#include "model/storage_io.h"

#include <bit>
#include <cstring>
#include <span>

#include "util/byte_io.h"
#include "util/file_io.h"
#include "util/mmap_file.h"

namespace meetxml {
namespace model {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

namespace {

constexpr char kMagicV1[4] = {'M', 'X', 'M', '1'};
constexpr char kMagicV2[4] = {'M', 'X', 'M', '2'};
constexpr uint32_t kMinorV1 = 1;
constexpr uint32_t kMinorV2 = 2;
// The minor revision unaligned columnar (DOC1) document sections
// require.
constexpr uint32_t kMinorV2Columnar = 4;
// The minor revision aligned columnar (DOC2) sections require; also
// the first minor whose container aligns section payloads to 4-byte
// file offsets.
constexpr uint32_t kMinorV2AlignedColumnar = 5;
// Newest MXM2 minor a reader accepts; 3 added multi-document catalog
// images (several document sections + a CTLG directory,
// store/catalog.h), 4 added the columnar DOC1 payload, 5 added the
// aligned DOC2 payload and container section alignment.
constexpr uint32_t kMaxMinorV2 = 5;
// Corruption guard: a directory claiming more sections than this is
// rejected before any allocation happens.
constexpr uint32_t kMaxSections = 1024;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = kFnvOffset;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

// Section checksum for minor >= 4 images: FNV-1a steps over 8-byte
// chunks in four interleaved lanes, lanes folded and the tail absorbed
// byte-wise. Byte-serial FNV-1a is latency-bound at one multiply per
// byte (~0.5 GB/s) and was costing more than the columnar decode it
// guards; the four independent lanes run at memory speed while any
// flipped chunk still lands in its lane and survives the fold into the
// final 64-bit compare. Images up to minor 3 keep the byte-serial
// checksum so every existing image verifies unchanged.
uint64_t Fnv1aLanes(std::string_view bytes) {
  uint64_t lanes[4] = {kFnvOffset, kFnvOffset ^ 1, kFnvOffset ^ 2,
                       kFnvOffset ^ 3};
  const char* data = bytes.data();
  size_t size = bytes.size();
  size_t at = 0;
  for (; at + 32 <= size; at += 32) {
    for (int lane = 0; lane < 4; ++lane) {
      uint64_t chunk;
      std::memcpy(&chunk, data + at + lane * 8, 8);
      lanes[lane] = (lanes[lane] ^ chunk) * kFnvPrime;
    }
  }
  uint64_t hash = kFnvOffset;
  for (uint64_t lane : lanes) hash = (hash ^ lane) * kFnvPrime;
  for (; at < size; ++at) {
    hash ^= static_cast<unsigned char>(data[at]);
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t SectionChecksum(uint32_t minor, std::string_view bytes) {
  return minor >= kMinorV2Columnar ? Fnv1aLanes(bytes) : Fnv1a(bytes);
}

// The columnar codecs memcpy (or view) whole integer columns; these
// pin the in-memory element widths and byte order the raw
// little-endian arrays assume (big-endian hosts would need byte swaps
// here).
static_assert(sizeof(Oid) == 4 && sizeof(PathId) == 4 && sizeof(int) == 4,
              "columnar payloads assume 4-byte node columns");
static_assert(std::endian::native == std::endian::little,
              "columnar payloads memcpy little-endian columns");

// Reinterprets an integer column as its raw byte image (the writer
// side of the memcpy-decodable columnar arrays).
template <typename T>
std::string_view ColumnBytes(std::span<const T> column) {
  return std::string_view(reinterpret_cast<const char*>(column.data()),
                          column.size() * sizeof(T));
}

// Reads `count` little-endian u32 values into a 4-byte-element vector
// with a single bounds check and a single memcpy.
template <typename T>
Result<std::vector<T>> ReadU32Column(ByteReader* reader, size_t count) {
  MEETXML_ASSIGN_OR_RETURN(std::string_view raw, reader->View(count * 4));
  std::vector<T> column(count);
  std::memcpy(column.data(), raw.data(), raw.size());
  return column;
}

// Reinterprets the next `count` u32 values as a typed span over the
// image — the zero-copy read. Callers guarantee 4-byte alignment
// (DOC2 pads for it; CanViewPayload checks the base pointer).
template <typename T>
Result<std::span<const T>> ViewU32Column(ByteReader* reader, size_t count) {
  MEETXML_ASSIGN_OR_RETURN(std::string_view raw, reader->View(count * 4));
  return std::span<const T>(reinterpret_cast<const T*>(raw.data()), count);
}

// --- Path summary (shared by all payload codecs) ----------------------

void SerializePathSummary(const PathSummary& paths, ByteWriter* payload) {
  // In id order (parents first by construction).
  payload->U32(static_cast<uint32_t>(paths.size()));
  for (PathId id = 0; id < paths.size(); ++id) {
    payload->U32(paths.parent(id));
    payload->U8(static_cast<uint8_t>(paths.kind(id)));
    payload->StrU32(paths.label(id));
  }
}

Result<uint32_t> ParsePathSummary(ByteReader* reader, StoredDocument* doc) {
  PathSummary* paths = doc->mutable_paths();
  MEETXML_ASSIGN_OR_RETURN(uint32_t path_count, reader->U32());
  for (uint32_t i = 0; i < path_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t parent, reader->U32());
    MEETXML_ASSIGN_OR_RETURN(uint8_t kind, reader->U8());
    MEETXML_ASSIGN_OR_RETURN(std::string_view label, reader->StrViewU32());
    if (parent != bat::kInvalidPathId && parent >= i) {
      return Status::InvalidArgument(
          "corrupt image: path parent out of order");
    }
    if (kind > static_cast<uint8_t>(StepKind::kCdata)) {
      return Status::InvalidArgument("corrupt image: bad step kind");
    }
    PathId interned =
        paths->Intern(parent, static_cast<StepKind>(kind), label);
    if (interned != i) {
      return Status::InvalidArgument(
          "corrupt image: duplicate path entry");
    }
  }
  return path_count;
}

// --- DOC0: row-oriented payload ---------------------------------------

std::string SerializeRowDocumentPayload(const StoredDocument& doc) {
  ByteWriter payload;
  SerializePathSummary(doc.paths(), &payload);
  // Node columns.
  payload.U32(static_cast<uint32_t>(doc.node_count()));
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(doc.parent(oid));
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(doc.path(oid));
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(static_cast<uint32_t>(doc.rank(oid)));
  }
  // String associations, in global append order (preserves per-element
  // attribute order on reload).
  auto strings = doc.StringsInAppendOrder();
  payload.U32(static_cast<uint32_t>(strings.size()));
  for (const auto& [path, owner, value] : strings) {
    payload.U32(path);
    payload.U32(owner);
    payload.StrU32(value);
  }
  return payload.Take();
}

Result<StoredDocument> ParseRowDocumentPayload(std::string_view payload,
                                               const LoadOptions& options) {
  ByteReader reader(payload);
  StoredDocument doc;
  MEETXML_ASSIGN_OR_RETURN(uint32_t path_count,
                           ParsePathSummary(&reader, &doc));

  MEETXML_ASSIGN_OR_RETURN(uint32_t node_count, reader.U32());
  if (node_count > reader.remaining() / 4) {
    return Status::InvalidArgument("corrupt image: node count");
  }
  std::vector<Oid> parents(node_count);
  std::vector<PathId> node_paths(node_count);
  std::vector<uint32_t> ranks(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(parents[i], reader.U32());
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(node_paths[i], reader.U32());
    if (node_paths[i] >= path_count) {
      return Status::InvalidArgument("corrupt image: node path id");
    }
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(ranks[i], reader.U32());
  }
  doc.ReserveNodes(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    if (i > 0 && parents[i] >= i) {
      return Status::InvalidArgument(
          "corrupt image: parent OIDs must precede children");
    }
    doc.AppendNode(node_paths[i], parents[i],
                   static_cast<int>(ranks[i]));
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t string_count, reader.U32());
  uint64_t value_bytes = 0;
  for (uint32_t i = 0; i < string_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t path, reader.U32());
    if (path >= path_count) {
      return Status::InvalidArgument("corrupt image: string path id");
    }
    MEETXML_ASSIGN_OR_RETURN(uint32_t owner, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(std::string_view value, reader.StrViewU32());
    if (owner >= node_count) {
      return Status::InvalidArgument("corrupt image: string owner");
    }
    value_bytes += value.size();
    doc.AppendString(path, owner, value);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in storage image");
  }

  MEETXML_RETURN_NOT_OK(doc.Finalize());
  if (options.stats != nullptr) {
    // Rows replay through the append path: every column value and
    // string byte is copied out of the image.
    options.stats->bytes_copied +=
        uint64_t{12} * node_count + uint64_t{8} * string_count + value_bytes;
    options.stats->mode_used = LoadMode::kCopy;
  }
  return doc;
}

// --- DOC1/DOC2: columnar payloads -------------------------------------

std::string SerializeColumnarDocumentPayload(const StoredDocument& doc,
                                             bool aligned) {
  ByteWriter payload;
  SerializePathSummary(doc.paths(), &payload);
  // DOC2 pads so every raw u32 column below lands on a 4-byte payload
  // offset (the container aligns the payload itself); after the path
  // summary and after each variable-length blob are the only two spots
  // where alignment can break.
  if (aligned) payload.AlignTo4();
  // Node columns as raw arrays — the reader memcpys (or views) them.
  payload.U32(static_cast<uint32_t>(doc.node_count()));
  payload.Bytes(ColumnBytes(doc.parent_column()));
  payload.Bytes(ColumnBytes(doc.path_column()));
  payload.Bytes(ColumnBytes(doc.rank_column()));
  // String relations grouped by path, in first-append order so a
  // loaded document re-serializes byte-identically.
  payload.U32(static_cast<uint32_t>(doc.string_count()));
  payload.U32(static_cast<uint32_t>(doc.string_paths().size()));
  for (PathId path : doc.string_paths()) {
    const bat::StrBat& table = doc.StringsAt(path);
    payload.U32(path);
    payload.U32(static_cast<uint32_t>(table.size()));
    payload.Bytes(ColumnBytes(table.heads()));
    // The append-order permutation column.
    payload.Bytes(ColumnBytes(doc.StringSeqAt(path)));
    payload.Bytes(ColumnBytes(table.tail_ends()));
    payload.Bytes(table.tail_blob());
    if (aligned) payload.AlignTo4();
  }
  return payload.Take();
}

// True when a view-mode decode can actually borrow: the payload must
// be the aligned codec and sit on a 4-byte base address (the framed
// offsets take care of the rest). In-memory buffers and mapped files
// are always suitably aligned in practice; the check is the safety
// net that turns an exotic caller into a silent copy instead of
// undefined behavior.
bool CanViewPayload(std::string_view payload, bool aligned,
                    const LoadOptions& options) {
  return aligned && options.mode == LoadMode::kView &&
         reinterpret_cast<uintptr_t>(payload.data()) % 4 == 0;
}

Result<StoredDocument> ParseColumnarDocumentPayload(
    std::string_view payload, bool aligned, const LoadOptions& options) {
  bool view = CanViewPayload(payload, aligned, options);
  uint64_t borrowed = 0;  // column/blob bytes served as views
  uint64_t copied = 0;    // column/blob bytes memcpy'd out of the image
  ByteReader reader(payload);
  StoredDocument doc;
  MEETXML_ASSIGN_OR_RETURN(uint32_t path_count,
                           ParsePathSummary(&reader, &doc));
  (void)path_count;  // the adopt calls re-check against paths().
  if (aligned) MEETXML_RETURN_NOT_OK(reader.AlignTo4());

  MEETXML_ASSIGN_OR_RETURN(uint32_t node_count, reader.U32());
  // Guard before allocating: three 4-byte columns per node.
  if (node_count > reader.remaining() / 12) {
    return Status::InvalidArgument("corrupt image: node count");
  }
  Status adopted = Status::OK();
  if (view) {
    MEETXML_ASSIGN_OR_RETURN(std::span<const Oid> parents,
                             ViewU32Column<Oid>(&reader, node_count));
    MEETXML_ASSIGN_OR_RETURN(std::span<const PathId> node_paths,
                             ViewU32Column<PathId>(&reader, node_count));
    MEETXML_ASSIGN_OR_RETURN(std::span<const int> ranks,
                             ViewU32Column<int>(&reader, node_count));
    adopted = doc.AdoptNodeColumnViews(parents, node_paths, ranks);
    borrowed += uint64_t{12} * node_count;
  } else {
    MEETXML_ASSIGN_OR_RETURN(std::vector<Oid> parents,
                             ReadU32Column<Oid>(&reader, node_count));
    MEETXML_ASSIGN_OR_RETURN(std::vector<PathId> node_paths,
                             ReadU32Column<PathId>(&reader, node_count));
    MEETXML_ASSIGN_OR_RETURN(std::vector<int> ranks,
                             ReadU32Column<int>(&reader, node_count));
    adopted = doc.AdoptNodeColumns(std::move(parents), std::move(node_paths),
                                   std::move(ranks));
    copied += uint64_t{12} * node_count;
  }
  if (!adopted.ok()) {
    return Status::InvalidArgument("corrupt image: ", adopted.message());
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t total_strings, reader.U32());
  MEETXML_ASSIGN_OR_RETURN(uint32_t group_count, reader.U32());
  // Every string row costs at least 12 bytes across its three columns,
  // every group at least 8 bytes of framing; reject impossible counts
  // before the permutation bitmap allocates.
  if (total_strings > reader.remaining() / 12 ||
      group_count > reader.remaining() / 8) {
    return Status::InvalidArgument("corrupt image: string counts");
  }
  std::vector<bool> seq_seen(total_strings, false);
  uint64_t rows_total = 0;
  for (uint32_t g = 0; g < group_count; ++g) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t path, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(uint32_t rows, reader.U32());
    if (rows == 0 || rows > reader.remaining() / 12) {
      return Status::InvalidArgument("corrupt image: string row count");
    }
    // The three columns and the blob are framed identically in both
    // modes; view the ranges first, validate the permutation, then
    // either borrow them outright or copy them into owned storage.
    MEETXML_ASSIGN_OR_RETURN(std::string_view owners_raw,
                             reader.View(uint64_t{rows} * 4));
    MEETXML_ASSIGN_OR_RETURN(std::string_view seq_raw,
                             reader.View(uint64_t{rows} * 4));
    MEETXML_ASSIGN_OR_RETURN(std::string_view ends_raw,
                             reader.View(uint64_t{rows} * 4));
    uint32_t blob_size;
    std::memcpy(&blob_size, ends_raw.data() + (uint64_t{rows} - 1) * 4, 4);
    MEETXML_ASSIGN_OR_RETURN(std::string_view blob,
                             reader.View(blob_size));
    if (aligned) MEETXML_RETURN_NOT_OK(reader.AlignTo4());
    // Validate the append-order permutation from the raw bytes — the
    // one per-row scan neither mode can skip (a corrupt image must
    // fail decode, never hand out a bogus reassembly order).
    for (uint32_t r = 0; r < rows; ++r) {
      uint32_t seq;
      std::memcpy(&seq, seq_raw.data() + uint64_t{r} * 4, 4);
      if (seq >= total_strings || seq_seen[seq]) {
        return Status::InvalidArgument(
            "corrupt image: string order is not a permutation");
      }
      seq_seen[seq] = true;
    }
    Status adopted_strings = Status::OK();
    if (view) {
      adopted_strings = doc.AdoptStringRelationViews(
          path,
          std::span<const Oid>(
              reinterpret_cast<const Oid*>(owners_raw.data()), rows),
          std::span<const uint32_t>(
              reinterpret_cast<const uint32_t*>(ends_raw.data()), rows),
          blob,
          std::span<const uint32_t>(
              reinterpret_cast<const uint32_t*>(seq_raw.data()), rows));
      borrowed += uint64_t{12} * rows + blob.size();
    } else {
      std::vector<Oid> owners(rows);
      std::memcpy(owners.data(), owners_raw.data(), owners_raw.size());
      std::vector<uint32_t> seq(rows);
      std::memcpy(seq.data(), seq_raw.data(), seq_raw.size());
      std::vector<uint32_t> ends(rows);
      std::memcpy(ends.data(), ends_raw.data(), ends_raw.size());
      adopted_strings = doc.AdoptStringRelation(
          path, std::move(owners), std::move(ends), std::string(blob),
          std::move(seq));
      copied += uint64_t{12} * rows + blob.size();
    }
    if (!adopted_strings.ok()) {
      return Status::InvalidArgument("corrupt image: ",
                                     adopted_strings.message());
    }
    rows_total += rows;
  }
  if (rows_total != total_strings) {
    return Status::InvalidArgument(
        "corrupt image: string order is not a permutation");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in storage image");
  }

  MEETXML_RETURN_NOT_OK(doc.Finalize());
  if (view) doc.PinBacking(options.backing);
  if (options.stats != nullptr) {
    options.stats->bytes_copied += copied;
    options.stats->bytes_viewed += borrowed;
    options.stats->mode_used = view ? LoadMode::kView : LoadMode::kCopy;
  }
  return doc;
}

std::string SerializeDocumentPayload(const StoredDocument& doc,
                                     DocumentPayloadFormat format) {
  switch (format) {
    case DocumentPayloadFormat::kRowOriented:
      return SerializeRowDocumentPayload(doc);
    case DocumentPayloadFormat::kColumnarUnaligned:
      return SerializeColumnarDocumentPayload(doc, /*aligned=*/false);
    case DocumentPayloadFormat::kColumnar:
      break;
  }
  return SerializeColumnarDocumentPayload(doc, /*aligned=*/true);
}

uint32_t MinorForPayloadFormat(DocumentPayloadFormat format) {
  switch (format) {
    case DocumentPayloadFormat::kRowOriented:
      return kMinorV2;
    case DocumentPayloadFormat::kColumnarUnaligned:
      return kMinorV2Columnar;
    case DocumentPayloadFormat::kColumnar:
      break;
  }
  return kMinorV2AlignedColumnar;
}

// Shared v2 container writer; takes pointers so callers can mix owned
// and borrowed sections without copying payloads.
Result<std::string> WriteContainer(
    const std::vector<const ImageSection*>& sections, uint32_t minor) {
  if (minor < kMinorV2 || minor > kMaxMinorV2) {
    return Status::InvalidArgument("unknown MXM2 minor revision ", minor);
  }
  if (sections.empty() || sections.size() > kMaxSections) {
    return Status::InvalidArgument("bad section count: ", sections.size());
  }
  ByteWriter out;
  for (char c : kMagicV2) out.U8(static_cast<uint8_t>(c));
  out.U32(minor);
  out.U32(static_cast<uint32_t>(sections.size()));
  for (const ImageSection* section : sections) {
    out.U32(section->id);
    out.U64(section->bytes.size());
    out.U64(SectionChecksum(minor, section->bytes));
  }
  std::string image = out.Take();
  for (const ImageSection* section : sections) {
    // Minor >= 5 containers start every payload on a 4-byte file
    // offset so aligned (DOC2) payloads stay aligned after the
    // variable-length sections before them.
    if (minor >= kMinorV2AlignedColumnar) {
      while (image.size() % 4 != 0) image.push_back('\0');
    }
    image += section->bytes;
  }
  return image;
}

}  // namespace

uint32_t DocumentSectionIdFor(DocumentPayloadFormat format) {
  switch (format) {
    case DocumentPayloadFormat::kRowOriented:
      return kDocumentSectionId;
    case DocumentPayloadFormat::kColumnarUnaligned:
      return kColumnarDocumentSectionId;
    case DocumentPayloadFormat::kColumnar:
      break;
  }
  return kAlignedColumnarDocumentSectionId;
}

Result<std::string> SerializeDocumentSection(const StoredDocument& doc,
                                             DocumentPayloadFormat format) {
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can be saved");
  }
  return SerializeDocumentPayload(doc, format);
}

Result<StoredDocument> ParseDocumentSection(std::string_view payload,
                                            const LoadOptions& options) {
  return ParseRowDocumentPayload(payload, options);
}

Result<StoredDocument> ParseColumnarDocumentSection(
    std::string_view payload, const LoadOptions& options) {
  return ParseColumnarDocumentPayload(payload, /*aligned=*/false, options);
}

Result<StoredDocument> ParseAlignedColumnarDocumentSection(
    std::string_view payload, const LoadOptions& options) {
  return ParseColumnarDocumentPayload(payload, /*aligned=*/true, options);
}

Result<StoredDocument> ParseAnyDocumentSection(uint32_t section_id,
                                               std::string_view payload,
                                               const LoadOptions& options) {
  if (section_id == kAlignedColumnarDocumentSectionId) {
    return ParseColumnarDocumentPayload(payload, /*aligned=*/true, options);
  }
  if (section_id == kColumnarDocumentSectionId) {
    return ParseColumnarDocumentPayload(payload, /*aligned=*/false,
                                        options);
  }
  if (section_id == kDocumentSectionId) {
    return ParseRowDocumentPayload(payload, options);
  }
  return Status::InvalidArgument("not a document section id: ",
                                 section_id);
}

Result<std::string> SaveSectionsToBytes(
    const std::vector<ImageSection>& sections, uint32_t minor) {
  std::vector<const ImageSection*> pointers;
  pointers.reserve(sections.size());
  for (const ImageSection& section : sections) pointers.push_back(&section);
  return WriteContainer(pointers, minor);
}

Result<std::string> SaveToBytes(const StoredDocument& doc,
                                const SaveOptions& options) {
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can be saved");
  }
  if (options.format_version != 1 && options.format_version != 2) {
    return Status::InvalidArgument("unknown storage format version ",
                                   options.format_version);
  }

  // Reject images the loader itself would refuse: too many sections, a
  // stray document section or duplicate ids must fail at write time,
  // not at the next restart.
  if (options.extra_sections.size() > kMaxSections - 1) {
    return Status::InvalidArgument("too many sections: ",
                                   options.extra_sections.size() + 1);
  }
  for (size_t i = 0; i < options.extra_sections.size(); ++i) {
    if (IsDocumentSectionId(options.extra_sections[i].id)) {
      return Status::InvalidArgument(
          "extra sections cannot use a document section id");
    }
    for (size_t j = 0; j < i; ++j) {
      if (options.extra_sections[j].id == options.extra_sections[i].id) {
        return Status::InvalidArgument("duplicate section id ",
                                       options.extra_sections[i].id);
      }
    }
  }

  if (options.format_version == 1) {
    if (!options.extra_sections.empty()) {
      return Status::InvalidArgument(
          "MXM1 images cannot carry extra sections");
    }
    // MXM1 predates the columnar payloads; its single payload is
    // always row-oriented, whatever payload_format says.
    std::string body =
        SerializeDocumentPayload(doc, DocumentPayloadFormat::kRowOriented);
    ByteWriter header;
    for (char c : kMagicV1) header.U8(static_cast<uint8_t>(c));
    header.U32(kMinorV1);
    header.U64(body.size());
    header.U64(Fnv1a(body));
    std::string out = header.Take();
    out += body;
    return out;
  }

  std::string body = SerializeDocumentPayload(doc, options.payload_format);
  std::vector<const ImageSection*> pointers;
  pointers.reserve(1 + options.extra_sections.size());
  ImageSection document_section{DocumentSectionIdFor(options.payload_format),
                                std::move(body)};
  pointers.push_back(&document_section);
  for (const ImageSection& section : options.extra_sections) {
    pointers.push_back(&section);
  }
  return WriteContainer(pointers, MinorForPayloadFormat(options.payload_format));
}

Result<SectionImage> LoadSectionsFromBytes(std::string_view bytes) {
  ByteReader reader(bytes);
  char magic[4];
  for (char& c : magic) {
    MEETXML_ASSIGN_OR_RETURN(uint8_t byte, reader.U8());
    c = static_cast<char>(byte);
  }

  if (std::memcmp(magic, kMagicV1, 4) == 0) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
    // Policy: accept every minor up to the newest we know (minors are
    // backward compatible); MXM1 minors start at 1.
    if (version < 1 || version > kMinorV1) {
      return Status::InvalidArgument("unsupported storage version ",
                                     version);
    }
    MEETXML_ASSIGN_OR_RETURN(uint64_t payload_size, reader.U64());
    MEETXML_ASSIGN_OR_RETURN(uint64_t checksum, reader.U64());
    size_t header_size = reader.pos();
    if (payload_size != bytes.size() - header_size) {
      return Status::InvalidArgument("storage image size mismatch");
    }
    std::string_view payload = bytes.substr(header_size);
    if (Fnv1a(payload) != checksum) {
      return Status::InvalidArgument("storage image checksum mismatch");
    }
    SectionImage image;
    image.minor = kMinorV1;
    image.sections.push_back(SectionView{kDocumentSectionId, payload});
    return image;
  }

  if (std::memcmp(magic, kMagicV2, 4) != 0) {
    return Status::InvalidArgument("not a meetxml storage image");
  }
  MEETXML_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  // Policy: accept every minor up to the newest we know (minors are
  // backward compatible); MXM2 minors start at 2.
  if (version < kMinorV2 || version > kMaxMinorV2) {
    return Status::InvalidArgument("unsupported storage version ",
                                   version);
  }
  MEETXML_ASSIGN_OR_RETURN(uint32_t section_count, reader.U32());
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::InvalidArgument("corrupt image: section count ",
                                   section_count);
  }
  struct DirEntry {
    uint32_t id;
    uint64_t size;
    uint64_t checksum;
  };
  std::vector<DirEntry> directory(section_count);
  for (DirEntry& entry : directory) {
    MEETXML_ASSIGN_OR_RETURN(entry.id, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(entry.size, reader.U64());
    MEETXML_ASSIGN_OR_RETURN(entry.checksum, reader.U64());
  }

  // Walk the payloads: for minor >= 5 every payload starts at the
  // next 4-byte file offset (the padding must be zero); the payloads
  // plus padding must tile the rest of the image exactly.
  SectionImage image;
  image.minor = version;
  image.sections.reserve(section_count);
  uint64_t offset = reader.pos();
  for (const DirEntry& entry : directory) {
    if (version >= kMinorV2AlignedColumnar) {
      while (offset % 4 != 0) {
        if (offset >= bytes.size() || bytes[offset] != '\0') {
          return Status::InvalidArgument(
              "corrupt image: bad section alignment padding");
        }
        ++offset;
      }
    }
    if (entry.size > bytes.size() - offset) {
      return Status::InvalidArgument("corrupt image: section overruns");
    }
    std::string_view payload =
        bytes.substr(offset, static_cast<size_t>(entry.size));
    offset += entry.size;
    if (SectionChecksum(version, payload) != entry.checksum) {
      return Status::InvalidArgument("storage image checksum mismatch");
    }
    image.sections.push_back(SectionView{entry.id, payload});
  }
  if (offset != bytes.size()) {
    return Status::InvalidArgument("storage image size mismatch");
  }
  return image;
}

Result<LoadedImage> LoadImageFromBytes(std::string_view bytes,
                                       const LoadOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(SectionImage raw, LoadSectionsFromBytes(bytes));
  LoadedImage image;
  image.format_version = raw.minor == kMinorV1 ? 1 : 2;
  bool saw_document = false;
  for (const SectionView& section : raw.sections) {
    if (IsDocumentSectionId(section.id)) {
      if (saw_document) {
        return Status::InvalidArgument(
            "corrupt image: duplicate document section");
      }
      saw_document = true;
      MEETXML_ASSIGN_OR_RETURN(
          image.doc,
          ParseAnyDocumentSection(section.id, section.bytes, options));
    } else {
      // Forward compatibility: unknown sections are preserved verbatim
      // for higher layers (or newer readers) to interpret.
      image.extra_sections.push_back(
          ImageSection{section.id, std::string(section.bytes)});
    }
  }
  if (!saw_document) {
    return Status::InvalidArgument("corrupt image: no document section");
  }
  return image;
}

Result<StoredDocument> LoadFromBytes(std::string_view bytes,
                                     const LoadOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(LoadedImage image,
                           LoadImageFromBytes(bytes, options));
  return std::move(image.doc);
}

Status SaveToFile(const StoredDocument& doc, const std::string& path,
                  const SaveOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(std::string bytes, SaveToBytes(doc, options));
  return util::WriteFileAtomic(path, bytes);
}

Result<StoredDocument> LoadFromFile(const std::string& path,
                                    const LoadOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(LoadedImage image,
                           LoadImageFromFile(path, options));
  return std::move(image.doc);
}

Result<LoadedImage> LoadImageFromFile(const std::string& path,
                                      const LoadOptions& options) {
  if (options.mode == LoadMode::kView) {
    // Zero-copy open: the shared mapping is pinned into the decoded
    // document, which owns the last word on when it unmaps.
    MEETXML_ASSIGN_OR_RETURN(
        std::shared_ptr<const util::MmapFile> file,
        util::MmapFile::OpenShared(path,
                                   util::MmapFile::Advice::kWillNeed));
    LoadOptions pinned = options;
    pinned.backing = file;
    return LoadImageFromBytes(file->bytes(), pinned);
  }
  // Decode straight out of the mapping (page cache) instead of copying
  // the whole image into a string first; everything LoadedImage keeps
  // is owned, so the mapping can end with this scope.
  MEETXML_ASSIGN_OR_RETURN(
      util::MmapFile file,
      util::MmapFile::Open(path, util::MmapFile::Advice::kSequential));
  return LoadImageFromBytes(file.bytes(), options);
}

}  // namespace model
}  // namespace meetxml
