#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace meetxml {
namespace util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnexpectedEof:
      return "Unexpected end of input";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown code";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(state_->code));
  out.append(": ");
  out.append(state_->message);
  return out;
}

void Status::Abort(std::string_view context) const {
  if (ok()) return;
  if (!context.empty()) {
    std::fprintf(stderr, "Aborting in '%.*s': %s\n",
                 static_cast<int>(context.size()), context.data(),
                 ToString().c_str());
  } else {
    std::fprintf(stderr, "Aborting: %s\n", ToString().c_str());
  }
  std::abort();
}

}  // namespace util
}  // namespace meetxml
