// Unit tests for util: Status/Result, string helpers, the deterministic
// RNG.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/file_io.h"
#include "util/mmap_file.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/threads.h"

namespace meetxml {
namespace util {
namespace {

// ---- Status ---------------------------------------------------------

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(Status, CarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing ", 42);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "missing thing 42");
  EXPECT_EQ(status.ToString(), "Not found: missing thing 42");
}

TEST(Status, ConcatenatesMixedPieces) {
  Status status = Status::InvalidArgument("x=", 1, ", y=", 2.5, " z");
  EXPECT_NE(status.message().find("x=1"), std::string::npos);
  EXPECT_NE(status.message().find("2.5"), std::string::npos);
}

TEST(Status, CopyAndMove) {
  Status original = Status::Internal("boom");
  Status copy = original;
  EXPECT_TRUE(copy.IsInternal());
  EXPECT_TRUE(original.IsInternal());
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsInternal());
}

TEST(Status, AllConstructorsSetPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::NotImplemented("").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::UnexpectedEof("").IsUnexpectedEof());
}

TEST(Status, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    MEETXML_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(fails().IsNotFound());
  auto passes = []() -> Status {
    MEETXML_RETURN_NOT_OK(Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(passes().ok());
}

// ---- Result ----------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(std::move(result).ValueOr(-1), -1);
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(std::move(result).ValueOr("fallback"), "hello");
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(3));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).ValueOrDie();
  EXPECT_EQ(*owned, 3);
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("bad");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    MEETXML_ASSIGN_OR_RETURN(int value, inner(fail));
    return value * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsInvalidArgument());
}

// ---- Strings ----------------------------------------------------------

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("bibliography", "bib"));
  EXPECT_FALSE(StartsWith("bib", "bibliography"));
  EXPECT_TRUE(EndsWith("path/cdata", "cdata"));
  EXPECT_FALSE(EndsWith("cdata", "path/cdata"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(Strings, Contains) {
  EXPECT_TRUE(Contains("Hacking & RSI", "&"));
  EXPECT_FALSE(Contains("Hacking", "hack"));  // case-sensitive
  EXPECT_TRUE(Contains("abc", ""));
}

TEST(Strings, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("Hacking", "hack"));
  EXPECT_TRUE(ContainsIgnoreCase("ICDE 1999", "icde"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(Strings, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD 123"), "mixed 123");
}

TEST(Strings, Split) {
  auto parts = Split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");  // empty pieces kept
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(Strings, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(Strings, Join) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join(std::vector<std::string>{}, "/"), "");
}

TEST(Strings, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("1999"));
  EXPECT_FALSE(IsAllDigits("19a9"));
  EXPECT_FALSE(IsAllDigits(""));
}

// ---- Rng -----------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.2) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.2, 0.03);
}

TEST(Rng, NextWordShape) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    std::string word = rng.NextWord(3, 8);
    EXPECT_GE(word.size(), 3u);
    EXPECT_LE(word.size(), 8u);
    for (char c : word) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(Rng, NextGeometricRespectsCap) {
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(rng.NextGeometric(0.9, 5), 5);
  }
  // p=0 -> always 0.
  EXPECT_EQ(rng.NextGeometric(0.0, 5), 0);
}

TEST(Rng, PortableStream) {
  // Guards dataset reproducibility: the first outputs for seed 42 are
  // pinned. If this test ever fails, generated corpora changed.
  Rng rng(42);
  EXPECT_EQ(rng.Next64(), 0x15780b2e0c2ec716ULL);
  EXPECT_EQ(rng.Next64(), 0x6104d9866d113a7eULL);
  EXPECT_EQ(rng.Next64(), 0xae17533239e499a1ULL);
}

TEST(Strings, GlobMatch) {
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("dblp", "dblp"));
  EXPECT_FALSE(GlobMatch("dblp", "dblp2"));
  EXPECT_TRUE(GlobMatch("dblp*", "dblp_1999"));
  EXPECT_FALSE(GlobMatch("dblp*", "mm_dblp"));
  EXPECT_TRUE(GlobMatch("*_1999", "dblp_1999"));
  EXPECT_TRUE(GlobMatch("d?lp", "dblp"));
  EXPECT_FALSE(GlobMatch("d?lp", "dlp"));
  EXPECT_TRUE(GlobMatch("*a*b*", "xxaxxbxx"));
  EXPECT_FALSE(GlobMatch("*a*b*", "xxbxxaxx"));
  EXPECT_TRUE(GlobMatch("**", "x"));
  EXPECT_FALSE(GlobMatch("", "x"));
  EXPECT_TRUE(GlobMatch("", ""));
  // Case-sensitive, like document names.
  EXPECT_FALSE(GlobMatch("DBLP*", "dblp_1999"));
}

TEST(MmapFile, MapsFileContents) {
  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_mmap_test.bin")
          .string();
  const std::string content("mapped bytes \0 with nul", 23);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
  }
  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(file->bytes(), content);  // NUL byte and all
  std::filesystem::remove(path);
}

TEST(MmapFile, EmptyFileIsRejectedWithAClearMessage) {
  // An empty file can never be a valid image; rejecting it at open
  // time beats a decoder's "bad magic".
  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_mmap_empty.bin")
          .string();
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  auto file = MmapFile::Open(path);
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().message().find("empty"), std::string::npos)
      << file.status();
  EXPECT_NE(file.status().message().find(path), std::string::npos)
      << file.status();
  std::filesystem::remove(path);
}

TEST(MmapFile, MissingFileIsNotFoundWithErrnoText) {
  auto file = MmapFile::Open("/nonexistent/path/nothing.bin");
  ASSERT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsNotFound());
  // The message names the path and carries the strerror text.
  EXPECT_NE(file.status().message().find("/nonexistent/path/nothing.bin"),
            std::string::npos)
      << file.status();
  EXPECT_NE(file.status().message().find("No such file"),
            std::string::npos)
      << file.status();
}

TEST(MmapFile, AdviseIsBestEffortOnEveryState) {
  // Advise must be callable on mapped, buffered and default-constructed
  // files alike — it is a hint, never an error path.
  MmapFile unopened;
  unopened.Advise(MmapFile::Advice::kWillNeed);

  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_mmap_advise.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "some bytes";
  }
  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  file->Advise(MmapFile::Advice::kWillNeed);
  file->Advise(MmapFile::Advice::kRandom);
  file->Advise(MmapFile::Advice::kSequential);
  file->Advise(MmapFile::Advice::kNormal);
  EXPECT_EQ(file->bytes(), "some bytes");
  std::filesystem::remove(path);
}

TEST(MmapFile, OpenSharedPinsTheMappingAcrossOwners) {
  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_mmap_shared.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "pinned";
  }
  auto shared = MmapFile::OpenShared(path);
  ASSERT_TRUE(shared.ok()) << shared.status();
  std::shared_ptr<const MmapFile> borrower = *shared;
  shared->reset();  // the original handle goes away...
  EXPECT_EQ(borrower->bytes(), "pinned");  // ...the borrower still reads
  std::filesystem::remove(path);
}

TEST(WriteFileAtomic, ReplacesContentAndLeavesNoTempBehind) {
  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_atomic.bin")
          .string();
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second");
  // No temp sibling (path.tmp.<pid>.<n>) survives a successful write.
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::temp_directory_path())) {
    EXPECT_EQ(
        entry.path().filename().string().rfind("meetxml_atomic.bin.tmp", 0),
        std::string::npos)
        << entry.path();
  }
  std::filesystem::remove(path);
}

TEST(WriteFileAtomic, KeepsAnExistingMappingAlive) {
  // The rename-over contract: overwriting a mapped file must not
  // disturb borrowers of the old inode — the foundation under saving
  // a view-backed store to its own path.
  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_atomic_map.bin")
          .string();
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  auto mapped = MmapFile::OpenShared(path);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new contents").ok());
  EXPECT_EQ((*mapped)->bytes(), "old contents");
  auto reread = ReadFileToString(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, "new contents");
  std::filesystem::remove(path);
}

TEST(MmapFile, MoveTransfersTheMapping) {
  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_mmap_move.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "payload";
  }
  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  MmapFile moved = std::move(*file);
  EXPECT_EQ(moved.bytes(), "payload");
  std::filesystem::remove(path);
}

// ---- threads --------------------------------------------------------

TEST(ResolveThreads, ZeroMeansHardwareParallelismNeverLessThanOne) {
  // hardware_concurrency() may return 0; the resolved count never may.
  EXPECT_GE(ResolveThreads(0), 1u);
  EXPECT_EQ(ResolveThreads(0),
            std::max(1u, std::thread::hardware_concurrency()));
}

TEST(ResolveThreads, ExplicitRequestsAreTakenVerbatim) {
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(3), 3u);
  EXPECT_EQ(ResolveThreads(64), 64u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  unsigned workers = ParallelFor(kCount, 4, [&hits](size_t i) {
    hits[i].fetch_add(1);
  });
  EXPECT_GE(workers, 1u);
  EXPECT_LE(workers, 4u);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, DegeneratesGracefully) {
  // Empty range: no workers, body never called.
  bool called = false;
  EXPECT_EQ(ParallelFor(0, 8, [&called](size_t) { called = true; }), 0u);
  EXPECT_FALSE(called);
  // One item on many threads: runs inline on one worker.
  size_t seen = 123;
  EXPECT_EQ(ParallelFor(1, 8, [&seen](size_t i) { seen = i; }), 1u);
  EXPECT_EQ(seen, 0u);
  // Serial pin: exactly one worker regardless of count.
  int ran = 0;
  EXPECT_EQ(ParallelFor(10, 1, [&ran](size_t) { ++ran; }), 1u);
  EXPECT_EQ(ran, 10);
}

}  // namespace
}  // namespace util
}  // namespace meetxml
