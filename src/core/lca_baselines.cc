#include "core/lca_baselines.h"

#include <bit>
#include <unordered_set>

namespace meetxml {
namespace core {

using util::Result;
using util::Status;

Result<Oid> NaiveLca(const StoredDocument& doc, Oid a, Oid b) {
  if (a >= doc.node_count() || b >= doc.node_count()) {
    return Status::NotFound("NaiveLca: OID out of range");
  }
  std::unordered_set<Oid> ancestors;
  for (Oid cur = a;; cur = doc.parent(cur)) {
    ancestors.insert(cur);
    if (cur == doc.root()) break;
  }
  for (Oid cur = b;; cur = doc.parent(cur)) {
    if (ancestors.count(cur)) return cur;
    if (cur == doc.root()) break;
  }
  return Status::Internal("NaiveLca: nodes share no ancestor");
}

Result<EulerRmqLca> EulerRmqLca::Build(const StoredDocument& doc) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  EulerRmqLca lca;
  size_t n = doc.node_count();
  lca.node_count_ = n;
  lca.tour_.reserve(2 * n);
  lca.depth_of_tour_.reserve(2 * n);
  lca.first_.assign(n, 0);

  // Iterative Euler tour: visit node, recurse into child, revisit node.
  struct Frame {
    Oid node;
    std::vector<Oid> kids;
    size_t next_kid;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{doc.root(), doc.children(doc.root()), 0});
  lca.first_[doc.root()] = 0;
  lca.tour_.push_back(doc.root());
  lca.depth_of_tour_.push_back(doc.depth(doc.root()));

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_kid >= frame.kids.size()) {
      stack.pop_back();
      if (!stack.empty()) {
        Oid up = stack.back().node;
        lca.tour_.push_back(up);
        lca.depth_of_tour_.push_back(doc.depth(up));
      }
      continue;
    }
    Oid child = frame.kids[frame.next_kid++];
    lca.first_[child] = static_cast<uint32_t>(lca.tour_.size());
    lca.tour_.push_back(child);
    lca.depth_of_tour_.push_back(doc.depth(child));
    stack.push_back(Frame{child, doc.children(child), 0});
  }

  // Sparse table over tour depths.
  size_t m = lca.tour_.size();
  int levels = std::bit_width(m);
  lca.sparse_.resize(static_cast<size_t>(levels));
  lca.sparse_[0].resize(m);
  for (size_t i = 0; i < m; ++i) {
    lca.sparse_[0][i] = static_cast<uint32_t>(i);
  }
  for (int k = 1; k < levels; ++k) {
    size_t span = size_t{1} << k;
    if (m + 1 < span) break;
    lca.sparse_[static_cast<size_t>(k)].resize(m - span + 1);
    for (size_t i = 0; i + span <= m; ++i) {
      uint32_t left = lca.sparse_[static_cast<size_t>(k - 1)][i];
      uint32_t right =
          lca.sparse_[static_cast<size_t>(k - 1)][i + span / 2];
      lca.sparse_[static_cast<size_t>(k)][i] =
          lca.depth_of_tour_[left] <= lca.depth_of_tour_[right] ? left
                                                                : right;
    }
  }
  return lca;
}

Result<Oid> EulerRmqLca::Query(Oid a, Oid b) const {
  if (a >= node_count_ || b >= node_count_) {
    return Status::NotFound("EulerRmqLca: OID out of range");
  }
  uint32_t lo = first_[a];
  uint32_t hi = first_[b];
  if (lo > hi) std::swap(lo, hi);
  ++hi;  // half-open [lo, hi)
  uint32_t len = hi - lo;
  int k = std::bit_width(len) - 1;
  uint32_t left = sparse_[static_cast<size_t>(k)][lo];
  uint32_t right =
      sparse_[static_cast<size_t>(k)][hi - (uint32_t{1} << k)];
  uint32_t best =
      depth_of_tour_[left] <= depth_of_tour_[right] ? left : right;
  return tour_[best];
}

size_t EulerRmqLca::MemoryBytes() const {
  size_t bytes = tour_.size() * sizeof(Oid) +
                 first_.size() * sizeof(uint32_t) +
                 depth_of_tour_.size() * sizeof(uint32_t);
  for (const auto& level : sparse_) bytes += level.size() * sizeof(uint32_t);
  return bytes;
}

}  // namespace core
}  // namespace meetxml
