// Cross-document concept lookup (paper §4).
//
// "We may want to know whether a certain bibliographical item that we
// found in one bibliography also lives in another bibliography;
// however, we have no idea how the relevant information is marked up.
// So a good approach is to combine the meet operator with fulltext
// search similar to the introductory example and use the results as a
// starting point for displaying and browsing."
//
// FindInOtherDocument takes a subtree in the source document (say, an
// <article>), extracts its most distinctive strings, full-text searches
// them in the target document — whose schema may be completely
// different — and returns the meets of the matches: the target's
// nearest concepts for the same item.

#ifndef MEETXML_TEXT_CROSS_DOCUMENT_H_
#define MEETXML_TEXT_CROSS_DOCUMENT_H_

#include <string>
#include <vector>

#include "core/meet_general.h"
#include "core/restrictions.h"
#include "text/search.h"

namespace meetxml {
namespace text {

/// \brief Knobs for the cross-document probe.
struct CrossFindOptions {
  /// How many probe strings to extract from the source subtree (the
  /// longest ones are the most distinctive).
  size_t max_probe_strings = 4;
  /// Strings shorter than this are never probes (years and page
  /// numbers alone would match everything).
  size_t min_probe_length = 4;
  /// Matching mode in the target (case-insensitive by default: the
  /// other bibliography may capitalize differently).
  MatchMode mode = MatchMode::kContainsIgnoreCase;
  /// Require a result's witnesses to cover at least this many distinct
  /// probe strings (1 = any match; higher = stronger evidence).
  size_t min_probes_covered = 2;
  /// Restrictions applied to the target meets; the target root is
  /// always excluded in addition.
  core::MeetOptions meet_options;
};

/// \brief The probe strings that would be used for a subtree (exposed
/// for testing and for explain-style output): string values in the
/// subtree, longest first, deduplicated, capped by the options.
std::vector<std::string> ExtractProbeStrings(
    const model::StoredDocument& source, bat::Oid subtree,
    const CrossFindOptions& options = {});

/// \brief Finds the target document's nearest concepts for the item
/// rooted at `subtree` in `source`. `target_search` must be built over
/// `target`. Results are ordered by ascending witness distance; each
/// covers at least `min_probes_covered` probe strings.
util::Result<std::vector<core::GeneralMeet>> FindInOtherDocument(
    const model::StoredDocument& source, bat::Oid subtree,
    const model::StoredDocument& target,
    const FullTextSearch& target_search,
    const CrossFindOptions& options = {});

}  // namespace text
}  // namespace meetxml

#endif  // MEETXML_TEXT_CROSS_DOCUMENT_H_
