#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace meetxml {
namespace util {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  auto lower = [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  };
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           lower(haystack[i + j]) == lower(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

namespace {
template <typename Piece>
std::string JoinImpl(const std::vector<Piece>& pieces,
                     std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}

std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative backtracking over the last '*': linear in practice, no
  // recursion, no pathological blow-up on repeated stars.
  size_t p = 0;
  size_t t = 0;
  size_t star = std::string_view::npos;
  size_t star_text = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_text = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_text;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace util
}  // namespace meetxml
