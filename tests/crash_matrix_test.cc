// Crash-safety proven by exhaustive kill-point enumeration.
//
// The failpoint sites woven through util/file_io.h and
// model/storage_io.cc each mark "the process may die just past this
// operation". The matrix runs the save once unarmed to count the
// boundaries it crosses (FailPoints::TotalHits delta), then forks one
// child per boundary k, arms `*=crash:k:1` in the child — std::_Exit
// at the k-th boundary, no flushes, no destructors, the closest a unit
// test gets to a power cut — and reopens the image in the parent. The
// invariant, for every k: the file restores to exactly the old image
// or exactly the new one, never a torn hybrid. A separate sweep feeds
// the reopen path hand-torn tails (old image + every truncation of the
// appended region), the crash states a mid-append kill leaves when the
// directory pointer was not yet patched.
//
// These tests need the sites compiled in (-DMEETXML_FAILPOINTS=ON) and
// fork(); they GTEST_SKIP elsewhere, so the suite is safe to register
// in every build.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "store/catalog.h"
#include "tests/test_util.h"
#include "util/failpoint.h"
#include "util/file_io.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define MEETXML_CRASH_MATRIX_SUPPORTED 1
#endif

namespace meetxml {
namespace store {
namespace {

using meetxml::testing::MustShred;
using util::FailPoints;
using util::FailPointSpec;

#if defined(MEETXML_CRASH_MATRIX_SUPPORTED)

// Forks, runs `body` in the child under `*=crash:skip:1`, and reports
// how the child died. The child exits 0 when the body ran to
// completion (skip exceeded the boundaries crossed), or
// FailPoints::kCrashExitCode when the armed boundary killed it.
int RunChildCrashingAt(uint64_t skip, const std::function<void()>& body) {
  pid_t pid = fork();
  if (pid == 0) {
    FailPointSpec crash;
    crash.action = FailPointSpec::Action::kCrash;
    crash.skip = skip;
    crash.count = 1;
    if (!FailPoints::Arm("*", crash).ok()) std::_Exit(3);
    body();
    std::_Exit(0);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int wait_status = 0;
  EXPECT_EQ(waitpid(pid, &wait_status, 0), pid);
  EXPECT_TRUE(WIFEXITED(wait_status)) << "child killed by signal";
  return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(CrashMatrix, WriteFileAtomicIsOldOrNewAtEveryBoundary) {
  if (!FailPoints::enabled()) {
    GTEST_SKIP() << "failpoint sites are compiled out in this build";
  }
  const std::string path = TempPath("crash_matrix_wfa.txt");
  const std::string old_contents = "the old image bytes";
  const std::string new_contents =
      "the new image bytes, deliberately longer than the old ones";

  // Dry run: how many kill points does one atomic write cross?
  ASSERT_TRUE(util::WriteFileAtomic(path, old_contents).ok());
  FailPoints::Reset();
  ASSERT_TRUE(util::WriteFileAtomic(path, new_contents).ok());
  const uint64_t boundaries = FailPoints::TotalHits();
  FailPoints::Reset();
  ASSERT_GT(boundaries, 3u) << "expected open/write/flush/fsync/rename/"
                               "dirsync sites along the save";

  bool saw_old = false;
  bool saw_new = false;
  for (uint64_t k = 0; k < boundaries; ++k) {
    ASSERT_TRUE(util::WriteFileAtomic(path, old_contents).ok());
    int exit_code = RunChildCrashingAt(k, [&] {
      util::WriteFileAtomic(path, new_contents).ok();
    });
    ASSERT_EQ(exit_code, FailPoints::kCrashExitCode)
        << "boundary " << k << " of " << boundaries
        << " did not fire (site count changed between runs?)";
    auto contents = util::ReadFileToString(path);
    ASSERT_TRUE(contents.ok()) << "boundary " << k;
    EXPECT_TRUE(*contents == old_contents || *contents == new_contents)
        << "torn file after crash at boundary " << k << ": "
        << contents->substr(0, 64);
    saw_old |= *contents == old_contents;
    saw_new |= *contents == new_contents;
  }
  // The matrix must actually straddle the commit point: early kills
  // leave the old image, late kills (post-rename) the new one.
  EXPECT_TRUE(saw_old) << "no boundary left the old image";
  EXPECT_TRUE(saw_new) << "no boundary left the new image";
}

// One catalog on disk with two documents; the mutation under test adds
// a third and saves in place (the append + pointer-patch commit path).
class CrashMatrixCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FailPoints::enabled()) {
      GTEST_SKIP() << "failpoint sites are compiled out in this build";
    }
    path_ = TempPath("crash_matrix_catalog.mxm");
    Catalog catalog;
    ASSERT_TRUE(
        catalog.Add("alpha", MustShred(CorpusXml(1))).ok());
    ASSERT_TRUE(catalog.Add("beta", MustShred(CorpusXml(2))).ok());
    ASSERT_TRUE(catalog.SaveToFile(path_).ok());
    auto bytes = util::ReadFileToString(path_);
    ASSERT_TRUE(bytes.ok());
    base_bytes_ = std::move(*bytes);
  }

  static std::string CorpusXml(int n) {
    std::string xml = "<doc><entry><title>corpus " + std::to_string(n) +
                      "</title><year>" + std::to_string(1990 + n) +
                      "</year><note>";
    for (int i = 0; i <= n % 4; ++i) {
      xml += "token" + std::to_string((n * 5 + i) % 7) + " ";
    }
    xml += "</note></entry></doc>";
    return xml;
  }

  void RestoreBaseImage() {
    ASSERT_TRUE(util::WriteFileAtomic(path_, base_bytes_).ok());
  }

  // Loads the on-disk image, adds "gamma", saves in place. The load
  // happens inside so each run starts from identical placement state.
  void AddGammaAndSaveInPlace(CatalogSaveStats* stats) {
    auto catalog = Catalog::LoadFromFile(path_);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    ASSERT_TRUE(catalog->Add("gamma", MustShred(CorpusXml(3))).ok());
    CatalogSaveOptions save;
    save.in_place = true;
    save.stats = stats;
    ASSERT_TRUE(catalog->SaveToFile(path_, save).ok());
  }

  // old image = {alpha, beta}; new image = {alpha, beta, gamma}. Any
  // other reopen outcome is a torn commit.
  void ExpectOldOrNew(uint64_t boundary, bool* saw_old, bool* saw_new) {
    auto reopened = Catalog::LoadFromFile(path_);
    ASSERT_TRUE(reopened.ok())
        << "image unreadable after crash at boundary " << boundary << ": "
        << reopened.status();
    ASSERT_TRUE(reopened->size() == 2 || reopened->size() == 3)
        << "torn catalog (" << reopened->size()
        << " entries) after crash at boundary " << boundary;
    for (const NamedDocument* entry : reopened->entries()) {
      auto doc = reopened->Get(entry->name);
      ASSERT_TRUE(doc.ok()) << "entry '" << entry->name
                            << "' corrupt after crash at boundary "
                            << boundary << ": " << doc.status();
    }
    *saw_old |= reopened->size() == 2;
    *saw_new |= reopened->size() == 3;
  }

  std::string path_;
  std::string base_bytes_;
};

TEST_F(CrashMatrixCatalogTest, InPlaceSaveIsOldOrNewAtEveryBoundary) {
  // Dry run: count the boundaries one load + append-save crosses, and
  // pin that the save really took the in-place path (the matrix would
  // otherwise exercise the rewrite, a different commit protocol).
  FailPoints::Reset();
  CatalogSaveStats dry_stats;
  AddGammaAndSaveInPlace(&dry_stats);
  const uint64_t boundaries = FailPoints::TotalHits();
  FailPoints::Reset();
  ASSERT_TRUE(dry_stats.in_place)
      << "save fell back to the full rewrite; matrix target lost";
  ASSERT_GT(boundaries, 4u);

  bool saw_old = false;
  bool saw_new = false;
  for (uint64_t k = 0; k < boundaries; ++k) {
    RestoreBaseImage();
    int exit_code = RunChildCrashingAt(k, [&] {
      CatalogSaveStats stats;
      AddGammaAndSaveInPlace(&stats);
    });
    // Boundaries counted in the dry run include the parent-side load;
    // every k must still kill the child somewhere along load + save.
    ASSERT_EQ(exit_code, FailPoints::kCrashExitCode)
        << "boundary " << k << " of " << boundaries << " did not fire";
    ExpectOldOrNew(k, &saw_old, &saw_new);
  }
  EXPECT_TRUE(saw_old) << "no boundary left the old image";
  EXPECT_TRUE(saw_new) << "no boundary left the new image";
}

TEST_F(CrashMatrixCatalogTest, FullRewriteSaveIsOldOrNewAtEveryBoundary) {
  // The same matrix over the atomic-rewrite commit path (temp file +
  // rename + dirsync), which a compaction or foreign-path save takes.
  FailPoints::Reset();
  {
    auto catalog = Catalog::LoadFromFile(path_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE(catalog->Add("gamma", MustShred(CorpusXml(3))).ok());
    ASSERT_TRUE(catalog->SaveToFile(path_).ok());  // full rewrite
  }
  const uint64_t boundaries = FailPoints::TotalHits();
  FailPoints::Reset();
  ASSERT_GT(boundaries, 4u);

  bool saw_old = false;
  bool saw_new = false;
  for (uint64_t k = 0; k < boundaries; ++k) {
    RestoreBaseImage();
    int exit_code = RunChildCrashingAt(k, [&] {
      auto catalog = Catalog::LoadFromFile(path_);
      if (!catalog.ok()) std::_Exit(4);
      if (!catalog->Add("gamma", MustShred(CorpusXml(3))).ok()) {
        std::_Exit(4);
      }
      catalog->SaveToFile(path_).ok();
    });
    ASSERT_EQ(exit_code, FailPoints::kCrashExitCode)
        << "boundary " << k << " of " << boundaries << " did not fire";
    ExpectOldOrNew(k, &saw_old, &saw_new);
  }
  EXPECT_TRUE(saw_old);
  EXPECT_TRUE(saw_new);
}

TEST_F(CrashMatrixCatalogTest, TornAppendTailsRestoreTheOldImage) {
  // Build the fully-appended image once, then hand-tear it: the old
  // bytes (unpatched header — the directory pointer still names the
  // old CTLG) plus every truncation of the appended region is exactly
  // the file a kill between append and pointer-patch leaves behind.
  CatalogSaveStats stats;
  AddGammaAndSaveInPlace(&stats);
  ASSERT_TRUE(stats.in_place);
  auto appended = util::ReadFileToString(path_);
  ASSERT_TRUE(appended.ok());
  ASSERT_GT(appended->size(), base_bytes_.size());
  const std::string tail = appended->substr(base_bytes_.size());

  std::vector<size_t> cuts = {0, 1, 7, tail.size() / 2,
                              tail.size() - 1, tail.size()};
  for (size_t cut : cuts) {
    ASSERT_TRUE(
        util::WriteFileAtomic(path_, base_bytes_ + tail.substr(0, cut))
            .ok());
    auto reopened = Catalog::LoadFromFile(path_);
    ASSERT_TRUE(reopened.ok())
        << "torn tail of " << cut << " bytes broke the reopen: "
        << reopened.status();
    EXPECT_EQ(reopened->size(), 2u) << "torn tail of " << cut
                                    << " bytes surfaced as committed";
    for (const NamedDocument* entry : reopened->entries()) {
      EXPECT_TRUE(reopened->Get(entry->name).ok());
    }
  }
}

#endif  // MEETXML_CRASH_MATRIX_SUPPORTED

#if !defined(MEETXML_CRASH_MATRIX_SUPPORTED)
TEST(CrashMatrix, SkippedOnThisPlatform) {
  GTEST_SKIP() << "fork-based crash matrix needs a unix platform";
}
#endif

}  // namespace
}  // namespace store
}  // namespace meetxml
