#include "text/thesaurus.h"

#include <algorithm>

#include "util/strings.h"

namespace meetxml {
namespace text {

using util::Result;
using util::Status;

void Thesaurus::AddRing(const std::vector<std::string>& terms) {
  std::vector<std::string> folded;
  folded.reserve(terms.size());
  for (const std::string& term : terms) {
    std::string f = util::ToLowerAscii(
        util::StripAsciiWhitespace(term));
    if (!f.empty()) folded.push_back(std::move(f));
  }
  for (const std::string& term : folded) {
    std::vector<std::string>& ring = rings_[term];
    for (const std::string& other : folded) {
      if (other == term) continue;
      if (std::find(ring.begin(), ring.end(), other) == ring.end()) {
        ring.push_back(other);
      }
    }
  }
}

Result<Thesaurus> Thesaurus::FromText(std::string_view text) {
  Thesaurus thesaurus;
  for (std::string_view line : util::Split(text, '\n')) {
    line = util::StripAsciiWhitespace(line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> ring;
    for (std::string_view piece : util::Split(line, ',')) {
      piece = util::StripAsciiWhitespace(piece);
      if (!piece.empty()) ring.push_back(std::string(piece));
    }
    if (ring.size() < 2) {
      return Status::InvalidArgument(
          "thesaurus ring needs at least two terms: '",
          std::string(line), "'");
    }
    thesaurus.AddRing(ring);
  }
  return thesaurus;
}

std::vector<std::string> Thesaurus::Expand(std::string_view term) const {
  std::string folded = util::ToLowerAscii(term);
  std::vector<std::string> out;
  out.push_back(folded);
  auto it = rings_.find(folded);
  if (it != rings_.end()) {
    for (const std::string& synonym : it->second) {
      if (std::find(out.begin(), out.end(), synonym) == out.end()) {
        out.push_back(synonym);
      }
    }
  }
  return out;
}

Result<TermMatches> SearchExpanded(const FullTextSearch& search,
                                   const Thesaurus& thesaurus,
                                   std::string_view term,
                                   const ExpandedSearchOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(TermMatches direct,
                           search.Search(term, options.mode));
  if (options.expand_below > 0 && direct.total() >= options.expand_below) {
    return direct;
  }

  // Merge postings of every synonym; attribution stays with `term`.
  std::vector<Posting> postings;
  for (const core::AssocSet& set : direct.sets) {
    for (bat::Oid node : set.nodes) {
      postings.push_back(Posting{set.path, node});
    }
  }
  for (const std::string& synonym : thesaurus.Expand(term)) {
    if (util::ToLowerAscii(term) == synonym) continue;
    MEETXML_ASSIGN_OR_RETURN(TermMatches expanded,
                             search.Search(synonym, options.mode));
    for (const core::AssocSet& set : expanded.sets) {
      for (bat::Oid node : set.nodes) {
        postings.push_back(Posting{set.path, node});
      }
    }
  }
  std::sort(postings.begin(), postings.end());
  postings.erase(std::unique(postings.begin(), postings.end()),
                 postings.end());

  TermMatches merged;
  merged.term = std::string(term);
  for (const Posting& posting : postings) {
    if (merged.sets.empty() || merged.sets.back().path != posting.path) {
      merged.sets.push_back(core::AssocSet{posting.path, {}});
    }
    merged.sets.back().nodes.push_back(posting.owner);
  }
  return merged;
}

}  // namespace text
}  // namespace meetxml
