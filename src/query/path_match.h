// Path pattern compilation: evaluating a pattern (with wildcards and
// descendant gaps) against the path summary yields the set of schema
// paths — i.e. relation names — a FROM binding ranges over. This is the
// paper's "regular path expressions ... evaluated against the actual
// database" (§1), done once against the schema instead of per node.

#ifndef MEETXML_QUERY_PATH_MATCH_H_
#define MEETXML_QUERY_PATH_MATCH_H_

#include <vector>

#include "model/path_summary.h"
#include "query/ast.h"
#include "util/result.h"

namespace meetxml {
namespace query {

/// \brief All schema paths matched by `pattern`, ascending by path id.
///
/// Patterns are root-anchored: `bibliography//cdata` matches every cdata
/// path under the root tag `bibliography`. A leading `//`-like behaviour
/// can be had with `*//...` only when the root tag is unknown — or start
/// the pattern with the root tag. Patterns longer than 63 steps are
/// rejected (the matcher packs NFA states into a 64-bit mask).
util::Result<std::vector<bat::PathId>> MatchPattern(
    const model::PathSummary& paths, const PathPattern& pattern);

}  // namespace query
}  // namespace meetxml

#endif  // MEETXML_QUERY_PATH_MATCH_H_
