// Whole-file reads and atomic writes for the loaders and savers (XML
// parse, storage images): one open/read/error-report path instead of
// a copy per call site.

#ifndef MEETXML_UTIL_FILE_IO_H_
#define MEETXML_UTIL_FILE_IO_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>

#include "util/failpoint.h"
#include "util/result.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define MEETXML_HAVE_FSYNC 1
#endif

namespace meetxml {
namespace util {

/// \brief Reads a file's entire contents into memory (binary mode).
inline Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: ", path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failed: ", path);
  return content;
}

/// \brief Fsyncs the directory containing `path`, making a just-renamed
/// directory entry durable: POSIX only promises the *file* contents
/// survive a crash after fsync(fd); the entry that names it lives in
/// the parent directory and needs its own fsync, or a power cut right
/// after a successful WriteFileAtomic can silently resurrect the old
/// file (or nothing at all). No-op where fsync is unavailable.
inline Status FsyncDirectoryOf(const std::string& path) {
#if defined(MEETXML_HAVE_FSYNC)
  size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  bool synced = fd >= 0 && ::fsync(fd) == 0;
  if (fd >= 0) ::close(fd);
  if (!synced || MEETXML_FAILPOINT_TRIGGERED("file_io.atomic.dirsync")) {
    return Status::Internal("cannot fsync directory of ", path);
  }
#else
  (void)path;
#endif
  return Status::OK();
}

/// \brief Writes `bytes` to `path` atomically: the data lands in a
/// uniquely named temporary sibling that is fsync'd and renamed over
/// the target, so readers never observe a torn file (even across a
/// crash right after the rename, and even when several savers race on
/// the same path — last rename wins with a complete image). On
/// platforms without POSIX rename-over semantics the old file is
/// removed first — a small visibility window, but never a torn file,
/// and no worse than the truncating overwrite it replaced. Crucially
/// for the zero-copy load path, overwriting an image that is currently
/// memory-mapped by a view-backed document replaces the directory
/// entry while the borrower keeps its mapping of the old inode.
/// (Truncating in place would SIGBUS every borrower.)
inline Status WriteFileAtomic(const std::string& path,
                              std::string_view bytes) {
  // Unique per process and per call, so concurrent savers never write
  // through the same temp file (a start-time tag stands in for the
  // pid where one isn't available).
  static std::atomic<uint64_t> counter{0};
  static const uint64_t process_tag =
#if defined(MEETXML_HAVE_FSYNC)
      static_cast<uint64_t>(::getpid());
#else
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  std::string tmp = path + ".tmp." + std::to_string(process_tag) + "." +
                    std::to_string(counter.fetch_add(1));
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  // Failpoint sites fire *after* the operation they name succeeds, so
  // a crash-armed site models "power cut just past this boundary".
  if (out == nullptr || MEETXML_FAILPOINT_TRIGGERED("file_io.atomic.open")) {
    if (out != nullptr) {
      std::fclose(out);
      std::remove(tmp.c_str());
    }
    return Status::NotFound("cannot open for write: ", tmp);
  }
  bool written =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size();
  written = !MEETXML_FAILPOINT_TRIGGERED("file_io.atomic.write") && written;
  written = std::fflush(out) == 0 && written;
  written = !MEETXML_FAILPOINT_TRIGGERED("file_io.atomic.flush") && written;
#if defined(MEETXML_HAVE_FSYNC)
  // Durability before visibility: the rename must never install a file
  // whose data a crash could still lose.
  written = ::fsync(::fileno(out)) == 0 && written;
  written = !MEETXML_FAILPOINT_TRIGGERED("file_io.atomic.fsync") && written;
#endif
  written = std::fclose(out) == 0 && written;
  written = !MEETXML_FAILPOINT_TRIGGERED("file_io.atomic.close") && written;
  if (!written) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to ", tmp);
  }
#if !defined(MEETXML_HAVE_FSYNC)
  // std::rename cannot replace an existing destination everywhere
  // (Windows EEXIST): drop the old file first. Not atomic there, but
  // no worse than the in-place truncating write it replaced.
  std::remove(path.c_str());
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0 ||
      MEETXML_FAILPOINT_TRIGGERED("file_io.atomic.rename")) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename ", tmp, " over ", path);
  }
  // The rename made the new image visible; the parent-directory fsync
  // makes it durable. Without it a crash here can roll the directory
  // entry back to the old file even though the caller saw success.
  return FsyncDirectoryOf(path);
}

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_FILE_IO_H_
