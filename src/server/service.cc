#include "server/service.h"

#include <utility>

#include "util/failpoint.h"
#include "util/net.h"

namespace meetxml {
namespace server {

using util::Result;
using util::Status;

namespace {

// Scoped in-flight accounting: Shutdown() waits for the count to hit
// zero, so every dispatch must decrement on every path out.
class InFlight {
 public:
  InFlight(std::atomic<uint64_t>* count, std::mutex* mu,
           std::condition_variable* cv)
      : count_(count), mu_(mu), cv_(cv) {
    count_->fetch_add(1, std::memory_order_acq_rel);
  }
  ~InFlight() {
    if (count_->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Pairs with the predicate re-check in Shutdown(); the lock
      // makes the decrement-then-notify atomic against its wait.
      std::lock_guard<std::mutex> lock(*mu_);
      cv_->notify_all();
    }
  }

 private:
  std::atomic<uint64_t>* count_;
  std::mutex* mu_;
  std::condition_variable* cv_;
};

// Scoped admission-slot ownership: once a query holds a slot (whether
// the front-end pre-admitted it or dispatch acquired one), every path
// out of HandlePayload must give it back — including decode failures
// that never reach HandleQuery.
class QuerySlot {
 public:
  QuerySlot(QueryService* service, bool held)
      : service_(service), held_(held) {}
  ~QuerySlot() {
    if (held_) service_->ReleaseQuerySlot();
  }
  QuerySlot(const QuerySlot&) = delete;
  QuerySlot& operator=(const QuerySlot&) = delete;

  bool held() const { return held_; }
  bool TryAcquire() {
    held_ = service_->TryAcquireQuerySlot();
    return held_;
  }

 private:
  QueryService* service_;
  bool held_;
};

// The opcode echoed on errors for requests too mangled to decode.
constexpr Opcode kFallbackOpcode = Opcode::kPing;

Opcode EchoOpcode(std::string_view payload) {
  if (!payload.empty()) {
    uint8_t raw = static_cast<uint8_t>(payload.front());
    if (raw >= static_cast<uint8_t>(Opcode::kHello) &&
        raw <= static_cast<uint8_t>(Opcode::kDump)) {
      return static_cast<Opcode>(raw);
    }
  }
  return kFallbackOpcode;
}

// Exposition labels of the per-opcode request histograms, indexed by
// opcode - 1 (matching QueryService::request_us_).
constexpr std::string_view kOpcodeLabels[] = {"hello", "query", "ping",
                                              "stats", "bye",   "dump"};

// Query text in the kDump query-log tail, quoted: escape the quote and
// backslash, flatten control bytes so one entry stays one line.
void AppendQuoted(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

QueryService::QueryService(const store::Catalog* catalog,
                           ServiceOptions options)
    : catalog_(catalog),
      executor_(catalog),
      options_(std::move(options)),
      sessions_(options_.session),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricsRegistry::Global()),
      query_log_(options_.query_log_capacity) {
  queries_counter_ = &metrics_->counter("meetxml_server_queries_total");
  errors_counter_ =
      &metrics_->counter("meetxml_server_request_errors_total");
  slow_counter_ = &metrics_->counter("meetxml_server_slow_queries_total");
  shed_counter_ = &metrics_->counter("meetxml_server_shed_total");
  deadline_counter_ =
      &metrics_->counter("meetxml_server_deadline_exceeded_total");
  sessions_opened_counter_ =
      &metrics_->counter("meetxml_server_sessions_opened_total");
  sessions_evicted_counter_ =
      &metrics_->counter("meetxml_server_sessions_evicted_total");
  sessions_gauge_ = &metrics_->gauge("meetxml_server_sessions_active");
  for (size_t i = 0; i < 6; ++i) {
    std::string labels = "op=\"";
    labels += kOpcodeLabels[i];
    labels += '"';
    request_us_[i] =
        &metrics_->histogram("meetxml_server_request_us", labels);
  }
  queries_baseline_ = queries_counter_->Value();
  errors_baseline_ = errors_counter_->Value();
  shed_baseline_ = shed_counter_->Value();
}

bool QueryService::TryAcquireQuerySlot() {
  // Injected admission failure: behaves exactly like a full queue, so
  // tests can force the shed path without saturating anything.
  if (MEETXML_FAILPOINT_TRIGGERED("server.admit")) return false;
  uint64_t cap = options_.queue_cap;
  uint64_t current = admitted_.load(std::memory_order_relaxed);
  for (;;) {
    if (cap != 0 && current >= cap) return false;
    if (admitted_.compare_exchange_weak(current, current + 1,
                                        std::memory_order_acq_rel)) {
      return true;
    }
  }
}

void QueryService::ReleaseQuerySlot() {
  admitted_.fetch_sub(1, std::memory_order_acq_rel);
}

std::string QueryService::MakeBusyResponse(uint64_t negotiated_version,
                                           bool deadline_exceeded) {
  shed_counter_->Add(1);
  if (deadline_exceeded) deadline_counter_->Add(1);
  return EncodeBusyResponse(
      Opcode::kQuery, options_.busy_retry_after_ms,
      deadline_exceeded ? "query waited past the queue deadline"
                        : "server overloaded: admission queue is full",
      negotiated_version);
}

uint64_t QueryService::NowMs() const {
  return options_.clock ? options_.clock() : util::MonotonicMillis();
}

uint64_t QueryService::NowUs() const {
  if (options_.clock_us) return options_.clock_us();
  if (options_.clock) return options_.clock() * 1000;
  return obs::MonotonicMicros();
}

Result<std::unique_ptr<QueryService::Connection>> QueryService::Connect() {
  if (draining()) {
    return Status::Unavailable("server is shutting down");
  }
  return std::unique_ptr<Connection>(new Connection(this));
}

QueryService::Connection::~Connection() {
  if (session_id_ != 0) {
    // Ignore NotFound: eviction may have beaten the disconnect.
    service_->sessions_.Close(session_id_).ok();
  }
}

std::string QueryService::Connection::HandlePayload(
    std::string_view payload) {
  return HandlePayload(payload, RequestContext{});
}

std::string QueryService::Connection::HandlePayload(
    std::string_view payload, const RequestContext& ctx) {
  InFlight guard(&service_->in_flight_, &service_->drain_mu_,
                 &service_->drain_cv_);
  // Slot ownership spans the whole dispatch (released on every path
  // out), so the admission cap bounds queued + executing queries.
  QuerySlot slot(service_, ctx.pre_admitted);
  const bool observe = service_->options_.observe;
  const uint64_t start_us = observe ? service_->NowUs() : 0;
  // Undecodable requests are attributed to whatever opcode byte they
  // led with (the same one the error response echoes).
  Opcode opcode = EchoOpcode(payload);
  const uint64_t deadline_ms = service_->options_.queue_deadline_ms;
  std::string response;
  if (service_->draining()) {
    service_->errors_counter_->Add(1);
    response = EncodeErrorResponse(
        opcode, Status::Unavailable("server is shutting down"));
  } else if (opcode == Opcode::kQuery && !slot.held() &&
             !slot.TryAcquire()) {
    // The (cap+1)-th concurrent query: shed instead of queueing.
    response = service_->MakeBusyResponse(protocol_version(), false);
  } else if (opcode == Opcode::kQuery && deadline_ms > 0 &&
             ctx.admitted_ms > 0 &&
             service_->NowMs() >= ctx.admitted_ms &&
             service_->NowMs() - ctx.admitted_ms >= deadline_ms) {
    // Sat in the front-end queue past the deadline: the client gave up
    // (or will); executing now only wastes a worker.
    response = service_->MakeBusyResponse(protocol_version(), true);
  } else {
    Result<Request> request = DecodeRequest(payload);
    if (!request.ok()) {
      service_->errors_counter_->Add(1);
      response = EncodeErrorResponse(opcode, request.status());
    } else {
      opcode = request->opcode;
      response = service_->Dispatch(this, *request);
    }
  }
  if (observe) {
    uint64_t end_us = service_->NowUs();
    service_->request_us_[static_cast<size_t>(opcode) - 1]->Record(
        end_us >= start_us ? end_us - start_us : 0);
  }
  return response;
}

std::string QueryService::Dispatch(Connection* connection,
                                   const Request& request) {
  uint64_t now = NowMs();
  Response response;
  response.ok = true;
  response.opcode = request.opcode;
  auto error = [&](const Status& status) {
    errors_counter_->Add(1);
    return EncodeErrorResponse(request.opcode, status);
  };

  switch (request.opcode) {
    case Opcode::kHello: {
      if (request.protocol_version < kMinProtocolVersion ||
          request.protocol_version > kProtocolVersion) {
        return error(Status::InvalidArgument(
            "unsupported protocol version ", request.protocol_version,
            " (this server speaks ", kMinProtocolVersion, "..",
            kProtocolVersion, ")"));
      }
      uint64_t existing = connection->session_id_.load();
      if (existing != 0 && sessions_.Contains(existing)) {
        return error(Status::InvalidArgument(
            "connection already carries session ", existing));
      }
      Result<uint64_t> id = sessions_.Open(now);
      if (!id.ok()) return error(id.status());
      connection->session_id_ = *id;
      // The negotiated version shapes this connection's kStats bodies
      // from here on (v1 clients keep the byte-identical v1 reply).
      connection->protocol_version_.store(request.protocol_version,
                                          std::memory_order_release);
      sessions_opened_counter_->Add(1);
      response.session_id = *id;
      response.banner = options_.banner;
      return EncodeResponse(response);
    }
    case Opcode::kQuery:
      return HandleQuery(connection, request);
    case Opcode::kPing:
      // Sessionless pings are a health check; with a session they
      // double as keep-alive.
      if (connection->session_id_ != 0) {
        sessions_.Touch(connection->session_id_, now).ok();
      }
      return EncodeResponse(response);
    case Opcode::kStats: {
      ServiceStats stats = this->stats();
      response.stats.sessions_active = stats.sessions_active;
      response.stats.queries_served = stats.queries_served;
      response.stats.request_errors = stats.request_errors;
      response.stats.sessions_evicted = stats.sessions_evicted;
      if (connection->protocol_version() >= 2) {
        response.stats.version = 2;
        for (const obs::NamedSummary& named :
             metrics_->HistogramSummaries()) {
          StatsHistogramEntry entry;
          entry.name = named.name;
          entry.count = named.summary.count;
          entry.sum = named.summary.sum;
          entry.p50 = named.summary.p50;
          entry.p90 = named.summary.p90;
          entry.p99 = named.summary.p99;
          response.stats.histograms.push_back(std::move(entry));
        }
      } else {
        response.stats.version = 1;
      }
      return EncodeResponse(response);
    }
    case Opcode::kDump:
      // Sessionless, like kStats: scrape targets don't HELLO.
      response.dump = HandleDump();
      return EncodeResponse(response);
    case Opcode::kBye:
      if (connection->session_id_ != 0) {
        sessions_.Close(connection->session_id_).ok();
        connection->session_id_ = 0;
      }
      return EncodeResponse(response);
  }
  return error(Status::Internal("unhandled opcode"));
}

std::string QueryService::HandleDump() {
  RefreshGauges();
  std::string out = metrics_->RenderPrometheus();
  std::vector<obs::QueryLogEntry> entries = query_log_.Snapshot();
  if (!entries.empty()) {
    out += "# querylog capacity=";
    out += std::to_string(query_log_.capacity());
    out += " total=";
    out += std::to_string(query_log_.total_pushed());
    out += " (oldest first)\n";
  }
  for (const obs::QueryLogEntry& entry : entries) {
    out += "# querylog when_ms=";
    out += std::to_string(entry.when_ms);
    out += " session=";
    out += std::to_string(entry.session_id);
    out += entry.ok ? " ok=1" : " ok=0";
    out += entry.slow ? " slow=1" : " slow=0";
    out += " total_us=";
    out += std::to_string(entry.total_us);
    for (size_t i = 0; i < obs::kStageCount; ++i) {
      out += ' ';
      out += obs::StageName(static_cast<obs::Stage>(i));
      out += "_us=";
      out += std::to_string(entry.stage_us[i]);
    }
    out += " rows=";
    out += std::to_string(entry.rows);
    out += " scope=";
    AppendQuoted(&out, entry.scope);
    out += " query=";
    AppendQuoted(&out, entry.query);
    out += '\n';
  }
  return out;
}

void QueryService::RefreshGauges() const {
  sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
}

std::string QueryService::HandleQuery(Connection* connection,
                                      const Request& request) {
  auto error = [&](const Status& status) {
    errors_counter_->Add(1);
    return EncodeErrorResponse(Opcode::kQuery, status);
  };
  if (connection->session_id_ == 0) {
    return error(
        Status::InvalidArgument("no session — send HELLO first"));
  }
  Status touched = sessions_.Touch(connection->session_id_, NowMs());
  if (!touched.ok()) {
    // Evicted under us: the session is gone for good; the client must
    // HELLO again.
    uint64_t expired = connection->session_id_;
    connection->session_id_ = 0;
    return error(Status::NotFound("session ", expired,
                                  " expired (idle timeout)"));
  }
  const bool observe = options_.observe;
  obs::QueryTrace trace([this] { return NowUs(); });
  // Finishes the trace on both the error and the success path: stage
  // histograms, the slow-query flag, and the query-log entry.
  auto finish = [&](bool ok, uint64_t rows) {
    if (!observe) return;
    uint64_t total_us = trace.TotalStageUs();
    bool slow = options_.slow_query_ms > 0 &&
                total_us >= options_.slow_query_ms * 1000;
    if (slow) slow_counter_->Add(1);
    obs::RecordStageHistograms(metrics_, trace, rows);
    obs::QueryLogEntry entry;
    entry.when_ms = NowMs();
    entry.session_id = connection->session_id();
    entry.scope = request.scope;
    // Display budget: the log is a ring of recent queries, not an
    // archive; a megabyte query must not pin a megabyte of ring.
    entry.query = request.query.substr(0, 256);
    entry.total_us = total_us;
    for (size_t i = 0; i < obs::kStageCount; ++i) {
      entry.stage_us[i] = trace.stage_us(static_cast<obs::Stage>(i));
    }
    entry.rows = rows;
    entry.ok = ok;
    entry.slow = slow;
    query_log_.Push(std::move(entry));
  };
  uint64_t cap = sessions_.options().max_result_bytes;
  // Clamp to the frame budget: whatever the session policy says, an
  // answer this path approves must encode into one response frame, or
  // the TCP front-end would bounce what the in-process transport
  // delivered.
  if (cap == 0 || cap > kMaxQueryTableBytes) cap = kMaxQueryTableBytes;
  query::ExecuteOptions exec = options_.execute;
  // Push the byte cap down as a row-count hint: a rendered row costs
  // at least two bytes (one cell plus the newline), so more than cap/2
  // rows can never fit — stop producing them inside the executors, and
  // let ranked queries without an explicit LIMIT take the streaming
  // top-k merge. Any answer the hint truncates still overruns the byte
  // cap below, so the error contract is unchanged; complete answers
  // are byte-identical.
  uint64_t row_hint = cap / 2;
  if (row_hint > 0 &&
      (exec.limit_hint == 0 || exec.limit_hint > row_hint)) {
    exec.limit_hint = static_cast<size_t>(row_hint);
  }
  Result<store::MultiResult> result =
      executor_.ExecuteText(request.scope, request.query, exec,
                            observe ? &trace : nullptr);
  if (!result.ok()) {
    finish(false, 0);
    return error(result.status());
  }

  Response response;
  response.ok = true;
  response.opcode = Opcode::kQuery;
  response.row_count = result->rows.size();
  response.truncated = result->truncated;
  response.table = result->ToText();
  if (response.table.size() > cap) {
    finish(false, 0);
    // The per-session result-memory bound: the rendered answer is
    // dropped here, an error goes back, the session lives on.
    return error(Status::ResourceExhausted(
        "result of ", response.table.size(),
        " bytes exceeds the per-session cap of ", cap,
        " bytes; narrow the query or add LIMIT"));
  }
  queries_counter_->Add(1);
  finish(true, response.row_count);
  return EncodeResponse(response);
}

std::vector<uint64_t> QueryService::EvictIdle() {
  std::vector<uint64_t> evicted = sessions_.EvictIdle(NowMs());
  if (!evicted.empty()) sessions_evicted_counter_->Add(evicted.size());
  return evicted;
}

void QueryService::BeginShutdown() {
  draining_.store(true, std::memory_order_release);
}

void QueryService::Shutdown() {
  BeginShutdown();
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

ServiceStats QueryService::stats() const {
  ServiceStats stats;
  stats.sessions_active = sessions_.size();
  // Registry counters are process-wide; the construction-time baseline
  // keeps ServiceStats per-service (exact — the sharded counters lose
  // no increments under concurrent dispatch).
  stats.queries_served = queries_counter_->Value() - queries_baseline_;
  stats.request_errors = errors_counter_->Value() - errors_baseline_;
  stats.sessions_evicted = sessions_.total_evicted();
  stats.queries_shed = shed_counter_->Value() - shed_baseline_;
  return stats;
}

Result<InProcessClient> InProcessClient::Connect(QueryService* service) {
  MEETXML_ASSIGN_OR_RETURN(
      std::unique_ptr<QueryService::Connection> connection,
      service->Connect());
  return InProcessClient(std::move(connection));
}

Result<Response> InProcessClient::Roundtrip(const Request& request) {
  // The full wire path minus the wire: encode, frame, unframe, decode
  // on both sides, so the in-process transport exercises exactly the
  // bytes TCP clients send.
  FrameBuffer frames;
  frames.Append(EncodeFrame(EncodeRequest(request)));
  MEETXML_ASSIGN_OR_RETURN(std::optional<std::string> payload,
                           frames.Next());
  if (!payload.has_value()) {
    return Status::Internal("encoder produced a partial frame");
  }
  std::string response_payload = connection_->HandlePayload(*payload);
  return DecodeResponse(response_payload);
}

Result<uint64_t> InProcessClient::Hello(uint64_t version) {
  Request request;
  request.opcode = Opcode::kHello;
  request.protocol_version = version;
  MEETXML_ASSIGN_OR_RETURN(Response response, Roundtrip(request));
  if (!response.ok) {
    return Status(response.code, response.message);
  }
  return response.session_id;
}

Result<StatsBody> InProcessClient::Stats() {
  Request request;
  request.opcode = Opcode::kStats;
  MEETXML_ASSIGN_OR_RETURN(Response response, Roundtrip(request));
  if (!response.ok) {
    return Status(response.code, response.message);
  }
  return std::move(response.stats);
}

Result<std::string> InProcessClient::Dump() {
  Request request;
  request.opcode = Opcode::kDump;
  MEETXML_ASSIGN_OR_RETURN(Response response, Roundtrip(request));
  if (!response.ok) {
    return Status(response.code, response.message);
  }
  return std::move(response.dump);
}

Result<Response> InProcessClient::Query(std::string_view scope,
                                        std::string_view query_text) {
  Request request;
  request.opcode = Opcode::kQuery;
  request.scope = std::string(scope);
  request.query = std::string(query_text);
  return Roundtrip(request);
}

Status InProcessClient::Bye() {
  Request request;
  request.opcode = Opcode::kBye;
  MEETXML_ASSIGN_OR_RETURN(Response response, Roundtrip(request));
  if (!response.ok) {
    return Status(response.code, response.message);
  }
  return Status::OK();
}

}  // namespace server
}  // namespace meetxml
