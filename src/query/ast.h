// Abstract syntax tree of the query language.
//
// The language is the paper's "variant of SQL enriched with paths and
// path variables" (§1, footnote 1), extended with the meet operator as a
// declarative construct (§3) and the restriction clauses of §4:
//
//   SELECT meet(o1, o2)
//   FROM bibliography//cdata AS o1, bibliography//cdata AS o2
//   WHERE o1 CONTAINS 'Bit' AND o2 CONTAINS '1999'
//   EXCLUDE bibliography
//   WITHIN 8
//   LIMIT 100
//
// The baseline of the paper's introduction (regular path expressions
// with ancestor implication) is available as ANCESTORS(o1, o2).

#ifndef MEETXML_QUERY_AST_H_
#define MEETXML_QUERY_AST_H_

#include <optional>
#include <string>
#include <vector>

namespace meetxml {
namespace query {

/// \brief One step of a path pattern.
struct PatternStep {
  enum class Kind {
    kName,        // an element tag, matched literally
    kAnyElement,  // * — any single element step
    kDescendant,  // // — any sequence of element steps (incl. empty)
    kAttribute,   // @name
    kCdata,       // the literal step `cdata` (character data node)
  };
  Kind kind;
  std::string label;  // for kName / kAttribute
};

/// \brief A root-anchored path pattern, e.g. `bibliography//cdata`.
struct PathPattern {
  std::vector<PatternStep> steps;
  /// Original source text, kept for error messages and explain output.
  std::string text;
};

/// \brief One FROM binding: `pattern [AS] var`.
struct Binding {
  PathPattern pattern;
  std::string var;
};

/// \brief One atomic predicate.
struct Predicate {
  enum class Kind {
    kContains,    // var CONTAINS 'str'   (case-sensitive substring)
    kIcontains,   // var ICONTAINS 'str'  (case-insensitive substring)
    kWord,        // var WORD 'str'       (whole word, case-folded)
    kPhrase,      // var PHRASE 'str'     (consecutive words, folded)
    kSynonym,     // var SYNONYM 'str'    (term or its thesaurus ring,
                  //                       case-insensitive substring)
    kEquals,      // var = 'str'          (full string equality)
    kDistanceLe,  // DISTANCE(v1, v2) <= k
  };
  Kind kind;
  std::string var;      // first variable
  std::string var2;     // second variable (kDistanceLe only)
  std::string literal;  // string operand
  int bound = 0;        // integer operand (kDistanceLe only)
};

/// \brief A boolean predicate expression over one variable's values.
///
/// The WHERE clause is a top-level conjunction; each conjunct is either
/// a DISTANCE atom or a boolean tree (AND/OR/NOT, parenthesized) whose
/// leaves all test the *same* variable — boolean structure across
/// different variables has no meaning in the set-based model (bindings
/// are independent sets, not tuples), and the parser rejects it.
struct BoolExpr {
  enum class Op { kLeaf, kAnd, kOr, kNot };
  Op op = Op::kLeaf;
  Predicate leaf;                  // valid when op == kLeaf
  std::vector<BoolExpr> children;  // 2 for and/or, 1 for not
};

/// \brief The SELECT projection.
struct Projection {
  enum class Kind {
    kVar,        // SELECT o1          — one row per binding
    kTag,        // SELECT TAG(o1)     — the binding's tag
    kPath,       // SELECT PATH(o1)    — the binding's schema path
    kXml,        // SELECT XML(o1)     — reassembled XML of the binding
    kCount,      // SELECT COUNT(o1)   — number of bindings
    kMeet,       // SELECT MEET(o1, ..)— nearest concepts (paper §3)
    kAncestors,  // SELECT ANCESTORS(o1, ..) — the §1 baseline semantics
    kGraphMeet,  // SELECT GMEET(o1, o2) — reference-aware proximity
                 // meet over the tree + IDREF graph (paper §7)
  };
  Kind kind;
  std::vector<std::string> vars;
};

/// \brief A parsed query.
struct Query {
  std::vector<Projection> projections;
  std::vector<Binding> bindings;
  /// Top-level WHERE conjuncts: single-variable boolean trees and
  /// DISTANCE atoms.
  std::vector<BoolExpr> where;
  /// EXCLUDE patterns: meets at matching paths are suppressed (meet_X).
  std::vector<PathPattern> excludes;
  /// WITHIN bound: maximum witness distance (d-meet); absent = unbounded.
  std::optional<int> within;
  /// LIMIT: maximum number of result rows; absent = unlimited.
  std::optional<int> limit;
};

}  // namespace query
}  // namespace meetxml

#endif  // MEETXML_QUERY_AST_H_
