#include "model/storage_io.h"

#include <cstring>
#include <fstream>

#include "util/byte_io.h"
#include "util/file_io.h"

namespace meetxml {
namespace model {

using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

namespace {

constexpr char kMagicV1[4] = {'M', 'X', 'M', '1'};
constexpr char kMagicV2[4] = {'M', 'X', 'M', '2'};
constexpr uint32_t kMinorV1 = 1;
constexpr uint32_t kMinorV2 = 2;
// Newest MXM2 minor a reader accepts; 3 added multi-document catalog
// images (several DOC0 sections + a CTLG directory, store/catalog.h).
constexpr uint32_t kMaxMinorV2 = 3;
// Corruption guard: a directory claiming more sections than this is
// rejected before any allocation happens.
constexpr uint32_t kMaxSections = 1024;

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string SerializeDocumentPayload(const StoredDocument& doc) {
  ByteWriter payload;
  // Path summary, in id order (parents first by construction).
  const PathSummary& paths = doc.paths();
  payload.U32(static_cast<uint32_t>(paths.size()));
  for (PathId id = 0; id < paths.size(); ++id) {
    payload.U32(paths.parent(id));
    payload.U8(static_cast<uint8_t>(paths.kind(id)));
    payload.StrU32(paths.label(id));
  }
  // Node columns.
  payload.U32(static_cast<uint32_t>(doc.node_count()));
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(doc.parent(oid));
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(doc.path(oid));
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    payload.U32(static_cast<uint32_t>(doc.rank(oid)));
  }
  // String associations, in global append order (preserves per-element
  // attribute order on reload).
  auto strings = doc.StringsInAppendOrder();
  payload.U32(static_cast<uint32_t>(strings.size()));
  for (const auto& [path, owner, value] : strings) {
    payload.U32(path);
    payload.U32(owner);
    payload.StrU32(value);
  }
  return payload.Take();
}

Result<StoredDocument> ParseDocumentPayload(std::string_view payload) {
  ByteReader reader(payload);
  StoredDocument doc;
  PathSummary* paths = doc.mutable_paths();
  MEETXML_ASSIGN_OR_RETURN(uint32_t path_count, reader.U32());
  for (uint32_t i = 0; i < path_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t parent, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(uint8_t kind, reader.U8());
    MEETXML_ASSIGN_OR_RETURN(std::string label, reader.StrU32());
    if (parent != bat::kInvalidPathId && parent >= i) {
      return Status::InvalidArgument(
          "corrupt image: path parent out of order");
    }
    if (kind > static_cast<uint8_t>(StepKind::kCdata)) {
      return Status::InvalidArgument("corrupt image: bad step kind");
    }
    PathId interned =
        paths->Intern(parent, static_cast<StepKind>(kind), label);
    if (interned != i) {
      return Status::InvalidArgument(
          "corrupt image: duplicate path entry");
    }
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t node_count, reader.U32());
  if (node_count > reader.remaining() / 4) {
    return Status::InvalidArgument("corrupt image: node count");
  }
  std::vector<Oid> parents(node_count);
  std::vector<PathId> node_paths(node_count);
  std::vector<uint32_t> ranks(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(parents[i], reader.U32());
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(node_paths[i], reader.U32());
    if (node_paths[i] >= path_count) {
      return Status::InvalidArgument("corrupt image: node path id");
    }
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(ranks[i], reader.U32());
  }
  for (uint32_t i = 0; i < node_count; ++i) {
    if (i > 0 && parents[i] >= i) {
      return Status::InvalidArgument(
          "corrupt image: parent OIDs must precede children");
    }
    doc.AppendNode(node_paths[i], parents[i],
                   static_cast<int>(ranks[i]));
  }

  MEETXML_ASSIGN_OR_RETURN(uint32_t string_count, reader.U32());
  for (uint32_t i = 0; i < string_count; ++i) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t path, reader.U32());
    if (path >= path_count) {
      return Status::InvalidArgument("corrupt image: string path id");
    }
    MEETXML_ASSIGN_OR_RETURN(uint32_t owner, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(std::string value, reader.StrU32());
    if (owner >= node_count) {
      return Status::InvalidArgument("corrupt image: string owner");
    }
    doc.AppendString(path, owner, std::move(value));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in storage image");
  }

  MEETXML_RETURN_NOT_OK(doc.Finalize());
  return doc;
}

// Shared v2 container writer; takes pointers so callers can mix owned
// and borrowed sections without copying payloads.
Result<std::string> WriteContainer(
    const std::vector<const ImageSection*>& sections, uint32_t minor) {
  if (minor < kMinorV2 || minor > kMaxMinorV2) {
    return Status::InvalidArgument("unknown MXM2 minor revision ", minor);
  }
  if (sections.empty() || sections.size() > kMaxSections) {
    return Status::InvalidArgument("bad section count: ", sections.size());
  }
  ByteWriter out;
  for (char c : kMagicV2) out.U8(static_cast<uint8_t>(c));
  out.U32(minor);
  out.U32(static_cast<uint32_t>(sections.size()));
  for (const ImageSection* section : sections) {
    out.U32(section->id);
    out.U64(section->bytes.size());
    out.U64(Fnv1a(section->bytes));
  }
  std::string image = out.Take();
  for (const ImageSection* section : sections) {
    image += section->bytes;
  }
  return image;
}

}  // namespace

Result<std::string> SerializeDocumentSection(const StoredDocument& doc) {
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can be saved");
  }
  return SerializeDocumentPayload(doc);
}

Result<StoredDocument> ParseDocumentSection(std::string_view payload) {
  return ParseDocumentPayload(payload);
}

Result<std::string> SaveSectionsToBytes(
    const std::vector<ImageSection>& sections, uint32_t minor) {
  std::vector<const ImageSection*> pointers;
  pointers.reserve(sections.size());
  for (const ImageSection& section : sections) pointers.push_back(&section);
  return WriteContainer(pointers, minor);
}

Result<std::string> SaveToBytes(const StoredDocument& doc,
                                const SaveOptions& options) {
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can be saved");
  }
  if (options.format_version != 1 && options.format_version != 2) {
    return Status::InvalidArgument("unknown storage format version ",
                                   options.format_version);
  }

  // Reject images the loader itself would refuse: too many sections, a
  // stray document section or duplicate ids must fail at write time,
  // not at the next restart.
  if (options.extra_sections.size() > kMaxSections - 1) {
    return Status::InvalidArgument("too many sections: ",
                                   options.extra_sections.size() + 1);
  }
  for (size_t i = 0; i < options.extra_sections.size(); ++i) {
    if (options.extra_sections[i].id == kDocumentSectionId) {
      return Status::InvalidArgument(
          "extra sections cannot use the document section id");
    }
    for (size_t j = 0; j < i; ++j) {
      if (options.extra_sections[j].id == options.extra_sections[i].id) {
        return Status::InvalidArgument("duplicate section id ",
                                       options.extra_sections[i].id);
      }
    }
  }

  std::string body = SerializeDocumentPayload(doc);

  if (options.format_version == 1) {
    if (!options.extra_sections.empty()) {
      return Status::InvalidArgument(
          "MXM1 images cannot carry extra sections");
    }
    ByteWriter header;
    for (char c : kMagicV1) header.U8(static_cast<uint8_t>(c));
    header.U32(kMinorV1);
    header.U64(body.size());
    header.U64(Fnv1a(body));
    std::string out = header.Take();
    out += body;
    return out;
  }

  std::vector<const ImageSection*> pointers;
  pointers.reserve(1 + options.extra_sections.size());
  ImageSection document_section{kDocumentSectionId, std::move(body)};
  pointers.push_back(&document_section);
  for (const ImageSection& section : options.extra_sections) {
    pointers.push_back(&section);
  }
  return WriteContainer(pointers, kMinorV2);
}

Result<SectionImage> LoadSectionsFromBytes(std::string_view bytes) {
  ByteReader reader(bytes);
  char magic[4];
  for (char& c : magic) {
    MEETXML_ASSIGN_OR_RETURN(uint8_t byte, reader.U8());
    c = static_cast<char>(byte);
  }

  if (std::memcmp(magic, kMagicV1, 4) == 0) {
    MEETXML_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
    // Policy: accept every minor up to the newest we know (minors are
    // backward compatible); MXM1 minors start at 1.
    if (version < 1 || version > kMinorV1) {
      return Status::InvalidArgument("unsupported storage version ",
                                     version);
    }
    MEETXML_ASSIGN_OR_RETURN(uint64_t payload_size, reader.U64());
    MEETXML_ASSIGN_OR_RETURN(uint64_t checksum, reader.U64());
    size_t header_size = reader.pos();
    if (payload_size != bytes.size() - header_size) {
      return Status::InvalidArgument("storage image size mismatch");
    }
    std::string_view payload = bytes.substr(header_size);
    if (Fnv1a(payload) != checksum) {
      return Status::InvalidArgument("storage image checksum mismatch");
    }
    SectionImage image;
    image.minor = kMinorV1;
    image.sections.push_back(SectionView{kDocumentSectionId, payload});
    return image;
  }

  if (std::memcmp(magic, kMagicV2, 4) != 0) {
    return Status::InvalidArgument("not a meetxml storage image");
  }
  MEETXML_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  // Policy: accept every minor up to the newest we know (minors are
  // backward compatible); MXM2 minors start at 2.
  if (version < kMinorV2 || version > kMaxMinorV2) {
    return Status::InvalidArgument("unsupported storage version ",
                                   version);
  }
  MEETXML_ASSIGN_OR_RETURN(uint32_t section_count, reader.U32());
  if (section_count == 0 || section_count > kMaxSections) {
    return Status::InvalidArgument("corrupt image: section count ",
                                   section_count);
  }
  struct DirEntry {
    uint32_t id;
    uint64_t size;
    uint64_t checksum;
  };
  std::vector<DirEntry> directory(section_count);
  for (DirEntry& entry : directory) {
    MEETXML_ASSIGN_OR_RETURN(entry.id, reader.U32());
    MEETXML_ASSIGN_OR_RETURN(entry.size, reader.U64());
    MEETXML_ASSIGN_OR_RETURN(entry.checksum, reader.U64());
  }
  // The payloads must tile the rest of the image exactly.
  uint64_t expected = 0;
  uint64_t remaining = reader.remaining();
  for (const DirEntry& entry : directory) {
    if (entry.size > remaining - expected) {
      return Status::InvalidArgument("corrupt image: section overruns");
    }
    expected += entry.size;
  }
  if (expected != remaining) {
    return Status::InvalidArgument("storage image size mismatch");
  }

  SectionImage image;
  image.minor = version;
  image.sections.reserve(section_count);
  size_t offset = reader.pos();
  for (const DirEntry& entry : directory) {
    std::string_view payload =
        bytes.substr(offset, static_cast<size_t>(entry.size));
    offset += static_cast<size_t>(entry.size);
    if (Fnv1a(payload) != entry.checksum) {
      return Status::InvalidArgument("storage image checksum mismatch");
    }
    image.sections.push_back(SectionView{entry.id, payload});
  }
  return image;
}

Result<LoadedImage> LoadImageFromBytes(std::string_view bytes) {
  MEETXML_ASSIGN_OR_RETURN(SectionImage raw, LoadSectionsFromBytes(bytes));
  LoadedImage image;
  image.format_version = raw.minor == kMinorV1 ? 1 : 2;
  bool saw_document = false;
  for (const SectionView& section : raw.sections) {
    if (section.id == kDocumentSectionId) {
      if (saw_document) {
        return Status::InvalidArgument(
            "corrupt image: duplicate document section");
      }
      saw_document = true;
      MEETXML_ASSIGN_OR_RETURN(image.doc,
                               ParseDocumentPayload(section.bytes));
    } else {
      // Forward compatibility: unknown sections are preserved verbatim
      // for higher layers (or newer readers) to interpret.
      image.extra_sections.push_back(
          ImageSection{section.id, std::string(section.bytes)});
    }
  }
  if (!saw_document) {
    return Status::InvalidArgument("corrupt image: no document section");
  }
  return image;
}

Result<StoredDocument> LoadFromBytes(std::string_view bytes) {
  MEETXML_ASSIGN_OR_RETURN(LoadedImage image, LoadImageFromBytes(bytes));
  return std::move(image.doc);
}

Status SaveToFile(const StoredDocument& doc, const std::string& path,
                  const SaveOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(std::string bytes, SaveToBytes(doc, options));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for write: ", path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("short write to ", path);
  return Status::OK();
}

Result<StoredDocument> LoadFromFile(const std::string& path) {
  MEETXML_ASSIGN_OR_RETURN(LoadedImage image, LoadImageFromFile(path));
  return std::move(image.doc);
}

Result<LoadedImage> LoadImageFromFile(const std::string& path) {
  MEETXML_ASSIGN_OR_RETURN(std::string bytes, util::ReadFileToString(path));
  return LoadImageFromBytes(bytes);
}

}  // namespace model
}  // namespace meetxml
