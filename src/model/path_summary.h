// The path summary (paper Definition 3): the set of all root-to-node
// label paths of a document, interned as a trie.
//
// Every association's relation name is its path, so the path summary is
// simultaneously (a) the document's schema, (b) the catalog of BAT
// relation names, and (c) the structure the meet algorithms use to steer
// ancestor walks (the prefix order ⊑ of Definition 5).

#ifndef MEETXML_MODEL_PATH_SUMMARY_H_
#define MEETXML_MODEL_PATH_SUMMARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bat/oid.h"

namespace meetxml {
namespace model {

using bat::kInvalidPathId;
using bat::PathId;

/// \brief Kind of the last step of a path.
enum class StepKind : uint8_t {
  kElement,    // <tag> child
  kAttribute,  // @name arc (oid -> string), no own node
  kCdata,      // character-data node (own oid, string leaf)
};

/// \brief One step of a schema path.
struct PathStep {
  StepKind kind;
  std::string label;  // tag or attribute name; "cdata" for kCdata

  bool operator==(const PathStep& other) const {
    return kind == other.kind && label == other.label;
  }
};

/// \brief Interned trie of schema paths.
///
/// Path ids are dense and stable; parents are always interned before
/// children, so `id(parent) < id(child)` and iterating ids ascending is a
/// topological order of the schema tree.
class PathSummary {
 public:
  /// \brief Gets or creates the path `parent / (kind, label)`. Pass
  /// kInvalidPathId as parent for a root-level path.
  PathId Intern(PathId parent, StepKind kind, std::string_view label);

  /// \brief Finds an existing path; kInvalidPathId if absent.
  PathId Find(PathId parent, StepKind kind, std::string_view label) const;

  size_t size() const { return entries_.size(); }

  PathId parent(PathId id) const { return entries_[id].parent; }
  /// \brief Number of steps on the path; root-level paths have depth 1.
  uint32_t depth(PathId id) const { return entries_[id].depth; }
  StepKind kind(PathId id) const { return entries_[id].kind; }
  /// \brief Label of the last step (the node's tag / attribute name).
  const std::string& label(PathId id) const { return entries_[id].label; }
  const std::vector<PathId>& children(PathId id) const {
    return entries_[id].children;
  }
  /// \brief Paths with no parent (normally exactly one: the root tag).
  const std::vector<PathId>& roots() const { return roots_; }

  /// \brief True if `prefix` ⊑ `path`: walking up from `path` reaches
  /// `prefix` (equality counts, per Definition 5).
  bool IsPrefixOf(PathId prefix, PathId path) const;

  /// \brief The deepest common prefix path of two paths; kInvalidPathId
  /// when the paths are in different trees (cannot happen for one doc).
  PathId CommonPrefix(PathId a, PathId b) const;

  /// \brief Renders the path as relation-name text, e.g.
  /// "bibliography/institute/article/@key" or ".../title/cdata".
  std::string ToString(PathId id) const;

  /// \brief All path ids whose last step matches `kind` and `label`.
  std::vector<PathId> FindByLabel(StepKind kind,
                                  std::string_view label) const;

  /// \brief All path ids, ascending (== topological order).
  std::vector<PathId> AllPaths() const;

 private:
  struct Entry {
    PathId parent;
    uint32_t depth;
    StepKind kind;
    std::string label;
    std::vector<PathId> children;
  };

  struct Key {
    PathId parent;
    StepKind kind;
    std::string label;
    bool operator==(const Key& other) const {
      return parent == other.parent && kind == other.kind &&
             label == other.label;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = std::hash<std::string>()(k.label);
      h = h * 1000003u + static_cast<size_t>(k.parent);
      h = h * 1000003u + static_cast<size_t>(k.kind);
      return h;
    }
  };

  std::vector<Entry> entries_;
  std::vector<PathId> roots_;
  std::unordered_map<Key, PathId, KeyHash> lookup_;
};

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_PATH_SUMMARY_H_
