// Thread plumbing shared by every pool in the tree.
//
// Bulk load, the parallel catalog decode, the multi-document query
// fan-out and the meetxmld worker pool all take a "0 means pick for
// me" thread knob and run the same pick-next-atomically worker loop;
// resolving the knob and running the loop in one place keeps the
// contract (and the hardware_concurrency()-can-return-0 workaround)
// from drifting per call site.

#ifndef MEETXML_UTIL_THREADS_H_
#define MEETXML_UTIL_THREADS_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace meetxml {
namespace util {

/// \brief Resolves a user-facing thread-count knob: 0 means "use the
/// hardware parallelism" (never less than 1 — hardware_concurrency()
/// may legitimately return 0), any other value is taken verbatim.
unsigned ResolveThreads(unsigned requested);

/// \brief Runs `body(i)` for every i in [0, count) on up to
/// `ResolveThreads(threads)` workers (never more workers than items;
/// one worker runs inline on the calling thread). Returns the number
/// of workers used. Iterations are claimed with an atomic counter, so
/// `body` must be safe to call concurrently for distinct indices; the
/// call returns only after every iteration finished.
template <typename Body>
unsigned ParallelFor(size_t count, unsigned threads, Body&& body) {
  unsigned workers = static_cast<unsigned>(
      std::min<size_t>(ResolveThreads(threads), count));
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return count == 0 ? 0u : 1u;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& thread : pool) thread.join();
  return workers;
}

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_THREADS_H_
