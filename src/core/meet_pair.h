// Pairwise meet — meet2 of paper §3.1/Figure 3.
//
// Given two associations, returns their lowest common ancestor (the
// "nearest concept"). The walk is steered by the path summary: comparing
// the depths of the two current paths tells which side must step toward
// the root next, so no superfluous parent look-ups happen ("the
// comparison steers the search direction of the algorithm and avoids
// superfluous look-ups", paper §3.2).

#ifndef MEETXML_CORE_MEET_PAIR_H_
#define MEETXML_CORE_MEET_PAIR_H_

#include <optional>

#include "core/input_set.h"
#include "util/result.h"

namespace meetxml {
namespace core {

/// \brief Result of a pairwise meet.
struct PairMeet {
  /// The nearest concept (lowest common ancestor) node.
  Oid meet;
  /// Number of parent joins executed — equals the number of edges on the
  /// shortest path between the two inputs (paper §4's distance d).
  int joins;
};

/// \brief meet2 over two associations.
util::Result<PairMeet> MeetPair(const StoredDocument& doc, const Assoc& a,
                                const Assoc& b);

/// \brief meet2 over two plain nodes.
util::Result<PairMeet> MeetPair(const StoredDocument& doc, Oid a, Oid b);

/// \brief Tree distance in edges between two associations (the paper's
/// d(o1,o2) = number of joins of meet2).
util::Result<int> Distance(const StoredDocument& doc, const Assoc& a,
                           const Assoc& b);
util::Result<int> Distance(const StoredDocument& doc, Oid a, Oid b);

/// \brief d-meet (paper §4): the meet if the inputs are within
/// `max_distance` edges of each other, std::nullopt otherwise.
util::Result<std::optional<PairMeet>> MeetPairWithin(
    const StoredDocument& doc, const Assoc& a, const Assoc& b,
    int max_distance);

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_MEET_PAIR_H_
