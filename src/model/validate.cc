#include "model/validate.h"

#include <vector>

namespace meetxml {
namespace model {

using util::Status;

Status ValidateDocument(const StoredDocument& doc) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  if (doc.node_count() == 0) {
    return Status::InvalidArgument("document has no nodes");
  }
  const PathSummary& paths = doc.paths();

  // --- Path summary ----------------------------------------------------
  for (PathId id = 0; id < paths.size(); ++id) {
    PathId parent = paths.parent(id);
    if (parent == bat::kInvalidPathId) {
      if (paths.depth(id) != 1) {
        return Status::Internal("path ", id, ": root path with depth ",
                                paths.depth(id));
      }
      continue;
    }
    if (parent >= id) {
      return Status::Internal("path ", id,
                              ": parent not interned before child");
    }
    if (paths.depth(id) != paths.depth(parent) + 1) {
      return Status::Internal("path ", id, ": depth mismatch");
    }
    if (paths.kind(parent) != StepKind::kElement) {
      return Status::Internal("path ", id,
                              ": parent path is not an element path");
    }
  }

  // --- Node columns ------------------------------------------------------
  if (doc.parent(doc.root()) != bat::kInvalidOid) {
    return Status::Internal("root node has a parent");
  }
  for (Oid oid = 1; oid < doc.node_count(); ++oid) {
    Oid parent = doc.parent(oid);
    if (parent == bat::kInvalidOid || parent >= oid) {
      return Status::Internal("node ", oid,
                              ": parent OID does not precede it");
    }
    if (paths.parent(doc.path(oid)) != doc.path(parent)) {
      return Status::Internal("node ", oid,
                              ": path parent does not match node parent");
    }
    if (doc.depth(oid) != doc.depth(parent) + 1) {
      return Status::Internal("node ", oid, ": depth mismatch");
    }
  }

  // --- Children CSR --------------------------------------------------------
  size_t child_total = 0;
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    int last_rank = -1;
    for (Oid kid : doc.children(oid)) {
      if (kid >= doc.node_count() || doc.parent(kid) != oid) {
        return Status::Internal("node ", oid, ": stray child ", kid);
      }
      if (doc.rank(kid) < last_rank) {
        return Status::Internal("node ", oid,
                                ": children out of rank order");
      }
      last_rank = doc.rank(kid);
      ++child_total;
    }
  }
  if (child_total != doc.node_count() - 1) {
    return Status::Internal("children CSR covers ", child_total,
                            " nodes, expected ", doc.node_count() - 1);
  }

  // --- Edge relations --------------------------------------------------------
  std::vector<bool> seen(doc.node_count(), false);
  for (PathId path : doc.edge_paths()) {
    if (paths.kind(path) == StepKind::kAttribute) {
      return Status::Internal("attribute path ", path,
                              " owns an edge relation");
    }
    const OidOidBat& edges = doc.EdgesAt(path);
    for (size_t row = 0; row < edges.size(); ++row) {
      Oid child = edges.tail(row);
      if (child >= doc.node_count()) {
        return Status::Internal("edge relation ", path,
                                ": child OID out of range");
      }
      if (doc.path(child) != path) {
        return Status::Internal("edge relation ", path,
                                ": child has a different path");
      }
      if (edges.head(row) != doc.parent(child)) {
        return Status::Internal("edge relation ", path,
                                ": head is not the child's parent");
      }
      if (seen[child]) {
        return Status::Internal("node ", child,
                                " appears in two edge relations");
      }
      seen[child] = true;
    }
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    if (!seen[oid]) {
      return Status::Internal("node ", oid, " missing from edge relations");
    }
  }

  // --- String relations ---------------------------------------------------------
  std::vector<int> cdata_strings(doc.node_count(), 0);
  size_t string_total = 0;
  for (PathId path : doc.string_paths()) {
    StepKind kind = paths.kind(path);
    if (kind == StepKind::kElement) {
      return Status::Internal("element path ", path,
                              " owns a string relation");
    }
    const OidStrBat& table = doc.StringsAt(path);
    for (size_t row = 0; row < table.size(); ++row) {
      Oid owner = table.head(row);
      if (owner >= doc.node_count()) {
        return Status::Internal("string relation ", path,
                                ": owner OID out of range");
      }
      if (kind == StepKind::kCdata) {
        if (doc.path(owner) != path) {
          return Status::Internal("string relation ", path,
                                  ": cdata string owned by foreign node");
        }
        ++cdata_strings[owner];
      } else {  // attribute
        if (doc.path(owner) != paths.parent(path)) {
          return Status::Internal(
              "string relation ", path,
              ": attribute owned by node of a different element path");
        }
      }
      ++string_total;
    }
  }
  if (string_total != doc.string_count()) {
    return Status::Internal("string relations hold ", string_total,
                            " rows, expected ", doc.string_count());
  }
  for (Oid oid = 0; oid < doc.node_count(); ++oid) {
    if (doc.is_cdata(oid) && cdata_strings[oid] != 1) {
      return Status::Internal("cdata node ", oid, " has ",
                              cdata_strings[oid],
                              " string associations, expected 1");
    }
  }
  return Status::OK();
}

}  // namespace model
}  // namespace meetxml
