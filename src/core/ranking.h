// Result ranking and answer presentation (paper §4).
//
// "The number of joins is also a simple yet effective heuristic for
// establishing a ranking between the result OIDs. We believe that it is
// worthwhile to apply additional heuristics like distances in the
// source file or even more complicated information retrieval
// techniques to improve the ranking of the answer set."
//
// This module scores general-meet results with a weighted combination
// of the paper's heuristics:
//   * witness span        — fewer joins between witnesses is better,
//   * source-file locality — witnesses close in document order
//     (OID distance, a proxy for "distances in the source file"),
//   * coverage            — results whose witnesses span more distinct
//     search terms rank higher,
//   * specificity         — deeper (more specific) concepts win ties.

#ifndef MEETXML_CORE_RANKING_H_
#define MEETXML_CORE_RANKING_H_

#include <vector>

#include "core/meet_general.h"

namespace meetxml {
namespace core {

/// \brief Weights of the scoring heuristics. Defaults follow the
/// paper's emphasis: join count first, everything else a tie-breaker.
struct RankingOptions {
  double witness_distance_weight = 1.0;
  /// Weight of log2(OID span) — document-order locality.
  double document_span_weight = 0.25;
  /// Bonus per distinct input source covered (subtracted from the
  /// score, i.e. more sources = better rank).
  double source_coverage_bonus = 2.0;
  /// Small reward per level of meet depth (specificity).
  double depth_bonus = 0.05;

  /// Optional mapping from witness source index (the position of its
  /// AssocSet in the meet input) to a coarser group id — typically the
  /// search *term* the set came from, since one term's matches span
  /// several paths. Coverage then counts distinct groups instead of
  /// distinct sets. nullptr = identity.
  const std::vector<size_t>* source_groups = nullptr;
};

/// \brief A scored result; lower score = better.
struct RankedMeet {
  GeneralMeet meet;
  double score;
  /// Number of distinct input sources among the witnesses.
  size_t sources_covered;
  /// OID span of the witnesses (document-order locality proxy).
  Oid document_span;
};

/// \brief Scores and sorts general-meet results (best first). Stable
/// for equal scores (falls back to meet OID).
std::vector<RankedMeet> RankMeets(const StoredDocument& doc,
                                  std::vector<GeneralMeet> meets,
                                  const RankingOptions& options = {});

/// \brief Convenience: keep only results covering at least
/// `min_sources` distinct input sources (e.g. require every search
/// term to be represented by passing the term count).
std::vector<RankedMeet> FilterBySourceCoverage(
    std::vector<RankedMeet> ranked, size_t min_sources);

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_RANKING_H_
