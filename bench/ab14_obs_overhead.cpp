// AB14 — ablation: what does observability cost on the serving path?
//
// The same closed loop as AB12 (one client, in-process transport, the
// mixed query workload over a warmed catalog) run twice: once with
// ServiceOptions::observe = false — no per-request clock reads, no
// trace, no stage histograms, no query log, the pre-instrumentation
// dispatch — and once with the full pipeline on (arg 1). The contract
// this PR makes is that the instrumented loop stays within ~2% of the
// baseline throughput: a QueryTrace is a handful of monotonic clock
// reads and relaxed atomic adds per query, and the per-request
// histogram is one sharded Record; nothing on the hot path takes the
// registry mutex.
//
// Measured: items_per_second per arm plus the observe flag as a
// counter, so tools/check_bench_trend.py can archive both arms and a
// reviewer can compute the overhead ratio from one JSON.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "obs/metrics.h"
#include "server/service.h"
#include "store/catalog.h"

using namespace meetxml;

namespace {

constexpr int kDocs = 4;
constexpr int kQueriesPerIteration = 25;

// AB12's mixed workload: full-text meets, scoped and fan-out.
const char* const kQueries[] = {
    "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
    "WHERE a CONTAINS 'ICDE' AND b CONTAINS '1981' EXCLUDE dblp",
    "SELECT MEET(a, b) FROM dblp//title/cdata a, dblp//year/cdata b "
    "WHERE a CONTAINS 'database' AND b CONTAINS '1982' LIMIT 10",
    "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
    "WHERE a CONTAINS 'Author5' AND b CONTAINS 'SIGMOD' "
    "EXCLUDE dblp LIMIT 20",
};
constexpr int kQueryCount = 3;

const store::Catalog& SharedCatalog() {
  static store::Catalog* catalog = [] {
    auto* out = new store::Catalog;
    for (int i = 0; i < kDocs; ++i) {
      data::DblpOptions options;
      options.start_year = 1980 + 2 * i;
      options.end_year = options.start_year + 1;
      options.icde_papers_per_year = 20;
      options.other_papers_per_year = 40;
      options.journal_articles_per_year = 20;
      auto xml_text = data::GenerateDblpXml(options);
      MEETXML_CHECK_OK(xml_text.status());
      auto doc = model::ShredXmlText(*xml_text);
      MEETXML_CHECK_OK(doc.status());
      MEETXML_CHECK_OK(
          out->Add("dblp_" + std::to_string(i), std::move(*doc)).status());
    }
    MEETXML_CHECK_OK(out->Warm(/*build_text_indexes=*/true));
    return out;
  }();
  return *catalog;
}

void BM_ObsOverhead(benchmark::State& state) {
  const bool observe = state.range(0) != 0;
  server::ServiceOptions options;
  options.observe = observe;
  // A private registry keeps the two arms from sharing shard cells
  // (and keeps this bench out of the process-global exposition).
  obs::MetricsRegistry registry;
  options.metrics = &registry;
  server::QueryService service(&SharedCatalog(), std::move(options));
  auto client = server::InProcessClient::Connect(&service);
  MEETXML_CHECK_OK(client.status());
  MEETXML_CHECK_OK(client->Hello().status());
  for (auto _ : state) {
    for (int q = 0; q < kQueriesPerIteration; ++q) {
      const char* query = kQueries[q % kQueryCount];
      const char* scope = (q % 4 == 0) ? "dblp_0" : "*";
      auto response = client->Query(scope, query);
      MEETXML_CHECK_OK(response.status());
      benchmark::DoNotOptimize(response->row_count);
    }
  }
  MEETXML_CHECK_OK(client->Bye());
  state.SetItemsProcessed(state.iterations() * kQueriesPerIteration);
  state.counters["observe"] = observe ? 1 : 0;
  if (observe) {
    state.counters["traced_queries"] = static_cast<double>(
        registry.histogram("meetxml_server_request_us", "op=\"query\"")
            .Summary()
            .count);
  }
}
BENCHMARK(BM_ObsOverhead)
    ->Arg(0)  // baseline: observe off
    ->Arg(1)  // full tracing + histograms + query log
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
