// Minimal POSIX TCP helpers for the meetxmld service (server/) and its
// clients: listen/accept/connect plus read-exactly/write-all loops that
// absorb EINTR and short transfers. Everything speaks util::Status so
// socket failures propagate like any other error in the tree; no
// sockets API leaks above this header beyond the int descriptor.

#ifndef MEETXML_UTIL_NET_H_
#define MEETXML_UTIL_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace meetxml {
namespace util {

/// \brief Monotonic milliseconds since an arbitrary epoch — the time
/// base of session idle timeouts (never jumps with wall-clock changes).
uint64_t MonotonicMillis();

/// \brief Opens a listening TCP socket on 127.0.0.1:`port` (0 picks an
/// ephemeral port) with SO_REUSEADDR. Returns the descriptor.
Result<int> ListenTcp(uint16_t port, int backlog = 64);

/// \brief The port a listening socket actually bound (resolves port 0).
Result<uint16_t> LocalPort(int fd);

/// \brief Blocking accept; returns the connection descriptor. EINTR is
/// retried; any other failure (including the listener being closed by
/// another thread during shutdown) is an error.
Result<int> AcceptConnection(int listen_fd);

/// \brief Connects to `host`:`port` (numeric IPv4 or "localhost").
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// \brief ConnectTcp with a connect deadline: the socket connects in
/// nonblocking mode and the handshake is awaited with poll(2), so a
/// dead or blackholed host fails with Unavailable after
/// `connect_timeout_ms` instead of hanging for the kernel's minutes-long
/// default. 0 means block indefinitely (plain ConnectTcp). The returned
/// descriptor is back in blocking mode.
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       uint64_t connect_timeout_ms);

/// \brief Arms SO_RCVTIMEO: a read blocked longer than `ms` fails with
/// Unavailable ("timed out") instead of hanging on a stalled peer.
/// 0 clears the timeout.
Status SetRecvTimeoutMs(int fd, uint64_t ms);

/// \brief Arms SO_SNDTIMEO: the send-side twin of SetRecvTimeoutMs.
Status SetSendTimeoutMs(int fd, uint64_t ms);

/// \brief Reads exactly `size` bytes. A clean peer close before the
/// first byte reports UnexpectedEof with `eof_ok` semantics left to the
/// caller; a close mid-record is always UnexpectedEof.
Status ReadFull(int fd, void* data, size_t size);

/// \brief Reads up to `cap` bytes; returns how many arrived, 0 on a
/// clean peer close. EINTR is retried.
Result<size_t> ReadSome(int fd, void* data, size_t cap);

/// \brief Writes all of `bytes`, absorbing short writes and EINTR.
Status WriteFull(int fd, std::string_view bytes);

/// \brief Shuts down only the read side: stops taking new requests
/// while queued responses still deliver (the graceful-stop half).
void ShutdownRead(int fd);

/// \brief Shuts down both directions (wakes a blocked reader) without
/// releasing the descriptor; safe to call on an already-shut socket.
void ShutdownSocket(int fd);

/// \brief Closes the descriptor; negative descriptors are ignored.
void CloseSocket(int fd);

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_NET_H_
