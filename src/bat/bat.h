// Binary Association Tables (BATs): the storage and execution primitive
// of the Monet XML transform (paper §2, Definition 4).
//
// A BAT is a sequence of (head, tail) pairs. The Monet transform stores
// all associations of one schema path in one BAT; the meet algorithms are
// then expressed as joins/semijoins over these tables ("A salient feature
// ... is that they make heavy use of the relational operations of the
// underlying database engine", paper §3.2).

#ifndef MEETXML_BAT_BAT_H_
#define MEETXML_BAT_BAT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bat/oid.h"

namespace meetxml {
namespace bat {

/// \brief A read-mostly column that either owns its values or borrows
/// them from an external byte image (a mapped store file).
///
/// This is the ownership primitive behind zero-copy open: the image
/// loaders hand out columns that alias the mapped file (SetView), and
/// the first mutating call promotes the column to owned storage by
/// copying the borrowed range (EnsureOwned — copy-on-write at column
/// granularity). Readers never branch: data()/size() are kept current
/// across appends, adoption and promotion, so a hot-loop access costs
/// exactly a pointer index in both states.
///
/// Lifetime: a view column is valid only while its backing bytes are;
/// whoever installs a view is responsible for pinning the backing
/// (model::StoredDocument pins a shared mapping handle per document).
template <typename T>
class Column {
 public:
  Column() = default;

  Column(const Column& other) { *this = other; }
  Column& operator=(const Column& other) {
    if (this != &other) {
      own_ = other.own_;
      view_ = other.view_;
      if (view_) {
        data_ = other.data_;
        size_ = other.size_;
      } else {
        Sync();
      }
    }
    return *this;
  }
  Column(Column&& other) noexcept { *this = std::move(other); }
  Column& operator=(Column&& other) noexcept {
    if (this != &other) {
      // Moving the vector moves its heap buffer wholesale, so a data_
      // pointer into it stays valid under the new owner.
      own_ = std::move(other.own_);
      view_ = other.view_;
      data_ = other.data_;
      size_ = other.size_;
      other.own_.clear();
      other.view_ = false;
      other.Sync();
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* data() const { return data_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  std::span<const T> span() const { return {data_, size_}; }

  /// \brief True while the column borrows from external bytes.
  bool is_view() const { return view_; }

  void push_back(const T& value) {
    EnsureOwned();
    own_.push_back(value);
    Sync();
  }
  void reserve(size_t n) {
    if (view_) return;  // a view has nothing to pre-size
    own_.reserve(n);
    Sync();
  }
  void clear() {
    own_.clear();
    view_ = false;
    Sync();
  }

  /// \brief Takes ownership of pre-built values (the copy-mode bulk
  /// ingestion path).
  void Adopt(std::vector<T> values) {
    own_ = std::move(values);
    view_ = false;
    Sync();
  }

  /// \brief Borrows `values` without copying (the view-mode ingestion
  /// path). The caller guarantees the range outlives the column or any
  /// promotion of it.
  void SetView(std::span<const T> values) {
    own_.clear();
    own_.shrink_to_fit();
    view_ = true;
    data_ = values.data();
    size_ = values.size();
  }

  /// \brief Copy-on-write promotion: after this call the column owns
  /// its values and no longer references the backing bytes. No-op when
  /// already owned.
  void EnsureOwned() {
    if (!view_) return;
    own_.assign(data_, data_ + size_);
    view_ = false;
    Sync();
  }

  bool operator==(const Column& other) const {
    return std::equal(begin(), end(), other.begin(), other.end());
  }

 private:
  void Sync() {
    data_ = own_.data();
    size_ = own_.size();
  }

  std::vector<T> own_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool view_ = false;
};

/// \brief Column<char> semantics for a string arena: owns a blob or
/// borrows one from a mapped image, with the same copy-on-write
/// promotion contract as Column.
class ArenaColumn {
 public:
  ArenaColumn() = default;

  ArenaColumn(const ArenaColumn& other) { *this = other; }
  ArenaColumn& operator=(const ArenaColumn& other) {
    if (this != &other) {
      own_ = other.own_;
      view_ = other.view_;
      bytes_ = view_ ? other.bytes_ : std::string_view(own_);
    }
    return *this;
  }
  ArenaColumn(ArenaColumn&& other) noexcept { *this = std::move(other); }
  ArenaColumn& operator=(ArenaColumn&& other) noexcept {
    if (this != &other) {
      own_ = std::move(other.own_);
      view_ = other.view_;
      bytes_ = view_ ? other.bytes_ : std::string_view(own_);
      other.own_.clear();
      other.view_ = false;
      other.bytes_ = std::string_view(other.own_);
    }
    return *this;
  }

  size_t size() const { return bytes_.size(); }
  std::string_view view() const { return bytes_; }
  bool is_view() const { return view_; }

  void Append(std::string_view bytes) {
    EnsureOwned();
    own_.append(bytes.data(), bytes.size());
    bytes_ = own_;
  }
  void reserve(size_t n) {
    if (!view_) {
      own_.reserve(n);
      bytes_ = own_;
    }
  }

  void Adopt(std::string blob) {
    own_ = std::move(blob);
    view_ = false;
    bytes_ = own_;
  }
  void SetView(std::string_view blob) {
    own_.clear();
    own_.shrink_to_fit();
    view_ = true;
    bytes_ = blob;
  }
  void EnsureOwned() {
    if (!view_) return;
    own_.assign(bytes_.data(), bytes_.size());
    view_ = false;
    bytes_ = own_;
  }

  bool operator==(const ArenaColumn& other) const {
    return bytes_ == other.bytes_;
  }

 private:
  std::string own_;
  std::string_view bytes_;
  bool view_ = false;
};

/// \brief A binary association table with typed head and tail columns.
///
/// Stored column-wise like MonetDB; rows are addressed positionally.
/// Both columns are ownership-aware (bat::Column): a relation either
/// owns its rows or borrows them from a mapped image
/// (AdoptColumnViews), with the same copy-on-write promotion contract
/// as StrBat — which is what lets the persisted per-path edge BATs of
/// a DRV1 section be served zero-copy.
template <typename H, typename T>
class Bat {
 public:
  Bat() = default;

  /// \brief Appends one association (promoting a view-backed relation
  /// to owned storage first).
  void Append(H head, T tail) {
    head_.push_back(std::move(head));
    tail_.push_back(std::move(tail));
  }

  void Reserve(size_t n) {
    head_.reserve(n);
    tail_.reserve(n);
  }

  size_t size() const { return head_.size(); }
  bool empty() const { return head_.empty(); }

  const H& head(size_t row) const { return head_[row]; }
  const T& tail(size_t row) const { return tail_[row]; }

  std::span<const H> heads() const { return head_.span(); }
  std::span<const T> tails() const { return tail_.span(); }

  /// \brief Takes ownership of pre-built columns (the copy-mode bulk
  /// ingestion path). Requires equal lengths (callers validate; this
  /// class only stores).
  void AdoptColumns(std::vector<H> heads, std::vector<T> tails) {
    head_.Adopt(std::move(heads));
    tail_.Adopt(std::move(tails));
  }

  /// \brief Borrows pre-built columns without copying — the view-mode
  /// (zero-copy) ingestion path. The caller must keep the backing
  /// bytes alive for as long as this relation stays view-backed.
  void AdoptColumnViews(std::span<const H> heads, std::span<const T> tails) {
    head_.SetView(heads);
    tail_.SetView(tails);
  }

  /// \brief True while either column borrows from external bytes.
  bool is_view() const { return head_.is_view() || tail_.is_view(); }

  /// \brief Promotes both columns to owned storage (no-op when already
  /// owned).
  void EnsureOwned() {
    head_.EnsureOwned();
    tail_.EnsureOwned();
  }

  /// \brief Swaps the two columns (MonetDB `reverse`), O(1) by move.
  Bat<T, H> Reverse() && {
    Bat<T, H> out;
    out.head_ = std::move(tail_);
    out.tail_ = std::move(head_);
    return out;
  }

  /// \brief Copying reverse.
  Bat<T, H> Reversed() const {
    Bat<T, H> out;
    out.head_ = tail_;
    out.tail_ = head_;
    return out;
  }

  /// \brief Sorts rows by (head, tail). Requires both orderable.
  void Sort() {
    std::vector<size_t> order(size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      if (head_[a] != head_[b]) return head_[a] < head_[b];
      return tail_[a] < tail_[b];
    });
    ApplyOrder(order);
  }

  /// \brief Removes exact duplicate rows; sorts as a side effect.
  void SortUnique() {
    Sort();
    std::vector<H> new_head;
    std::vector<T> new_tail;
    new_head.reserve(size());
    new_tail.reserve(size());
    for (size_t i = 0; i < size(); ++i) {
      if (i > 0 && head_[i] == new_head.back() &&
          tail_[i] == new_tail.back()) {
        continue;
      }
      new_head.push_back(head_[i]);
      new_tail.push_back(tail_[i]);
    }
    head_.Adopt(std::move(new_head));
    tail_.Adopt(std::move(new_tail));
  }

  bool operator==(const Bat& other) const {
    return head_ == other.head_ && tail_ == other.tail_;
  }

 private:
  template <typename H2, typename T2>
  friend class Bat;

  void ApplyOrder(const std::vector<size_t>& order) {
    std::vector<H> new_head;
    std::vector<T> new_tail;
    new_head.reserve(size());
    new_tail.reserve(size());
    for (size_t row : order) {
      new_head.push_back(head_[row]);
      new_tail.push_back(tail_[row]);
    }
    head_.Adopt(std::move(new_head));
    tail_.Adopt(std::move(new_tail));
  }

  Column<H> head_;
  Column<T> tail_;
};

/// BAT of tree edges or lifted association sets: (oid, oid).
using OidOidBat = Bat<Oid, Oid>;
/// BAT of ranks: (oid, int) — sibling order (Definition 1's rank).
using OidIntBat = Bat<Oid, int>;

/// \brief A (oid, string) BAT backed by a string arena: attribute
/// values and cdata leaves.
///
/// Instead of one heap-allocated std::string per row, all values of
/// the relation live concatenated in a single blob; a row is the
/// half-open byte range [ends[row-1], ends[row]). This is the BAT-as-
/// raw-column layout MonetDB bulk loads thrive on: the persistence
/// layer can adopt (or emit) the three columns with a memcpy each — or,
/// since the zero-copy refactor, borrow them straight out of a mapped
/// image (AdoptColumnViews) and never copy at all. A view-backed
/// relation promotes itself to owned storage the moment a mutating
/// call (Append) touches it; reads are identical in both states.
/// End offsets are u32, capping one relation's value bytes at 4 GiB —
/// far above any per-path relation of the corpora this engine targets,
/// and exactly the width the columnar image formats frame. Appends
/// beyond the cap set offsets_overflowed() instead of silently
/// wrapping; StoredDocument::Finalize turns the flag into a load/build
/// error.
class StrBat {
 public:
  StrBat() = default;

  /// \brief Appends one association; the value bytes are copied into
  /// the arena (promoting a view-backed relation to owned first). Rows
  /// past the 4 GiB arena cap mark the relation overflowed (their
  /// offsets would not be representable).
  void Append(Oid head, std::string_view tail) {
    head_.push_back(head);
    blob_.Append(tail);
    if (blob_.size() > kMaxArenaBytes) overflowed_ = true;
    ends_.push_back(static_cast<uint32_t>(blob_.size()));
  }

  void Reserve(size_t rows) {
    head_.reserve(rows);
    ends_.reserve(rows);
  }

  /// \brief Pre-sizes the arena; `bytes` is the expected total value
  /// length across all rows.
  void ReserveBytes(size_t bytes) { blob_.reserve(bytes); }

  size_t size() const { return head_.size(); }
  bool empty() const { return head_.empty(); }

  Oid head(size_t row) const { return head_[row]; }
  std::string_view tail(size_t row) const {
    size_t begin = row == 0 ? 0 : ends_[row - 1];
    return blob_.view().substr(begin, ends_[row] - begin);
  }

  std::span<const Oid> heads() const { return head_.span(); }
  /// \brief Cumulative end offsets into the arena, one per row
  /// (ends[size()-1] == tail_blob().size()).
  std::span<const uint32_t> tail_ends() const { return ends_.span(); }
  /// \brief The arena: every value, concatenated in row order.
  std::string_view tail_blob() const { return blob_.view(); }

  /// \brief Takes ownership of pre-built columns — the copy-mode bulk
  /// ingestion path of the columnar image loaders. Requires
  /// `heads.size() == ends.size()`, `ends` non-decreasing and
  /// `ends.back() == blob.size()` (callers validate; this class only
  /// stores).
  void AdoptColumns(std::vector<Oid> heads, std::vector<uint32_t> ends,
                    std::string blob) {
    head_.Adopt(std::move(heads));
    ends_.Adopt(std::move(ends));
    blob_.Adopt(std::move(blob));
  }

  /// \brief Borrows pre-built columns without copying — the view-mode
  /// (zero-copy) ingestion path. Same structural requirements as
  /// AdoptColumns; additionally the caller must keep the backing bytes
  /// alive for as long as this relation stays view-backed (see
  /// StoredDocument's pinned backing handle).
  void AdoptColumnViews(std::span<const Oid> heads,
                        std::span<const uint32_t> ends,
                        std::string_view blob) {
    head_.SetView(heads);
    ends_.SetView(ends);
    blob_.SetView(blob);
  }

  /// \brief True while any column borrows from external bytes.
  bool is_view() const {
    return head_.is_view() || ends_.is_view() || blob_.is_view();
  }

  /// \brief Promotes every column to owned storage (no-op when already
  /// owned); afterwards the relation no longer references its backing.
  void EnsureOwned() {
    head_.EnsureOwned();
    ends_.EnsureOwned();
    blob_.EnsureOwned();
  }

  /// \brief True when an Append pushed the arena past the u32 offset
  /// space; the relation's tails are unreliable and the owning
  /// document must refuse to finalize.
  bool offsets_overflowed() const { return overflowed_; }

  /// \brief Logical row equality — view- and owned-backed relations
  /// with the same rows compare equal. Equal row sequences imply equal
  /// columns (ends are cumulative lengths), so this is a plain
  /// column compare.
  bool operator==(const StrBat& other) const {
    return head_ == other.head_ && ends_ == other.ends_ &&
           blob_ == other.blob_;
  }

 private:
  static constexpr size_t kMaxArenaBytes = 0xffffffffu;

  Column<Oid> head_;
  Column<uint32_t> ends_;
  ArenaColumn blob_;
  bool overflowed_ = false;
};

/// BAT of leaf values: (oid, string) — attribute values and cdata.
using OidStrBat = StrBat;

/// \brief Hash index over a BAT's head column: head value -> row numbers.
///
/// MonetDB builds such indexes lazily for hash joins; we make the index an
/// explicit object so callers can reuse it across probes.
template <typename H, typename T>
class HeadIndex {
 public:
  explicit HeadIndex(const Bat<H, T>& table) {
    index_.reserve(table.size());
    for (size_t row = 0; row < table.size(); ++row) {
      index_[table.head(row)].push_back(row);
    }
  }

  /// \brief Rows whose head equals `key`; empty if none.
  const std::vector<size_t>& Lookup(const H& key) const {
    static const std::vector<size_t> kEmpty;
    auto it = index_.find(key);
    return it == index_.end() ? kEmpty : it->second;
  }

  bool Contains(const H& key) const { return index_.count(key) > 0; }

 private:
  std::unordered_map<H, std::vector<size_t>> index_;
};

}  // namespace bat
}  // namespace meetxml

#endif  // MEETXML_BAT_BAT_H_
