// meetxmld wire protocol v2: length-prefixed frames over a byte
// stream, little-endian, varints are LEB128 (util/byte_io.h).
//
// Frame:        u32 payload length | payload
//               A length of zero or beyond kMaxFrameBytes is a framing
//               error — the stream can no longer be trusted, so the
//               server answers with one error response and closes the
//               connection (per-request errors, below, keep it open).
// Request:      u8 opcode | per-opcode fields:
//   kHello      varint protocol version (kMinProtocolVersion ..
//               kProtocolVersion; the negotiated version shapes this
//               connection's kStats replies, see below). Opens the
//               connection's session; everything else requires one.
//   kQuery      scope (varint length + bytes) | query text (ditto).
//               Scope globs follow store::MultiExecutor ("*" = every
//               document).
//   kPing       no fields.
//   kStats      no fields.
//   kBye        no fields; closes the session (the response is still
//               delivered).
//   kDump       no fields (v2). Sessionless, like kStats.
// Response:     u8 status (0 = ok, 1 = error, 2 = busy) | u8 echoed
//               opcode | per-opcode body:
//   ok kHello   varint session id | banner (varint length + bytes)
//   ok kQuery   varint row count | u8 truncated | rendered table
//               (varint length + bytes)
//   ok kPing    empty
//   ok kStats   varint sessions active | varint queries served |
//               varint request errors | varint sessions evicted —
//               and, on a v2 connection only, the histogram summary
//               extension: varint entry count, then per entry
//               name (varint length + bytes) | varint count |
//               varint sum | varint p50 | varint p90 | varint p99
//               (microsecond latency summaries from the metrics
//               registry, obs/metrics.h). A v1 connection — or any
//               connection that has not said HELLO — gets exactly the
//               four-varint v1 body, byte-compatible with v1 clients;
//               decoders distinguish the two by whether bytes remain
//               after the fourth varint.
//   ok kDump    exposition text (varint length + bytes):
//               Prometheus-style metrics followed by `# querylog`
//               comment lines for the most recent queries with their
//               per-stage time breakdown (obs/trace.h).
//   ok kBye     empty
//   error       varint util::StatusCode | message (varint length +
//               bytes)
//   busy        varint retry-after hint (milliseconds) | message
//               (varint length + bytes). v2 extension: overload
//               shedding — the server refused to queue the request
//               (admission cap or queue deadline exceeded) and the
//               client should back off for about the hinted time and
//               retry. Emitted only on connections that negotiated
//               version >= 2 at HELLO; a v1 connection is shed with a
//               plain error response (kUnavailable, hint folded into
//               the message), so v1 decoders — which reject status
//               byte 2 — never see the extension.
// Responses on one connection arrive in request order; clients may
// pipeline. Trailing bytes after any request payload are rejected.
//
// v1 -> v2 compatibility: a v2 server accepts HELLO at version 1 and
// keeps every v1 reply byte-identical on that connection; kDump sent
// to a v1 server earns the standard unknown-opcode error. The v2
// additions are kDump, the kStats histogram extension, and the busy
// response status above — all negotiated at HELLO, all invisible to a
// v1 connection.
//
// Everything here is pure encode/decode over in-memory bytes — the
// same code path serves the TCP front-end (server/tcp_server.h), the
// in-process test transport (server/service.h) and the protocol fuzz
// suite.

#ifndef MEETXML_SERVER_PROTOCOL_H_
#define MEETXML_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace meetxml {
namespace server {

inline constexpr uint64_t kProtocolVersion = 2;
/// \brief Oldest client version HELLO still accepts; v1 connections
/// get v1-shaped kStats bodies (see the codec comment above).
inline constexpr uint64_t kMinProtocolVersion = 1;
/// \brief Hard ceiling on one frame's payload. An advertised length
/// beyond it is rejected before any allocation — a hostile length
/// prefix must not become a multi-gigabyte reserve.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
/// \brief Ceiling on a QUERY response's rendered table, chosen so the
/// whole response payload (status + opcode + varints + table) always
/// fits one frame. HandleQuery enforces it on every transport, which
/// keeps TCP and in-process answers identical: a table that passes the
/// session cap is never bounced later by the frame limit.
inline constexpr uint64_t kMaxQueryTableBytes = kMaxFrameBytes - 64;

/// \brief Decodes the little-endian u32 frame length prefix from 4 raw
/// bytes — the one codec clients reading straight off a socket share
/// with FrameBuffer.
inline uint32_t DecodeFrameLength(const char* bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes);
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

enum class Opcode : uint8_t {
  kHello = 1,
  kQuery = 2,
  kPing = 3,
  kStats = 4,
  kBye = 5,
  kDump = 6,  // v2
};

/// \brief A decoded request.
struct Request {
  Opcode opcode = Opcode::kPing;
  uint64_t protocol_version = 0;  // kHello
  std::string scope;              // kQuery
  std::string query;              // kQuery
};

/// \brief One histogram summary of a kStats v2 reply — the wire
/// mirror of obs::NamedSummary (values in microseconds).
struct StatsHistogramEntry {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

/// \brief Service counters carried by a kStats response.
struct StatsBody {
  /// Body shape: 1 encodes the legacy four-varint body, 2 appends the
  /// histogram summary extension. Decoders set it from what they saw.
  uint64_t version = kProtocolVersion;
  uint64_t sessions_active = 0;
  uint64_t queries_served = 0;
  uint64_t request_errors = 0;
  uint64_t sessions_evicted = 0;
  /// v2 only.
  std::vector<StatsHistogramEntry> histograms;
};

/// \brief A decoded response.
struct Response {
  bool ok = false;
  Opcode opcode = Opcode::kPing;
  // busy (v2): the server shed this request; retry after roughly the
  // hinted delay. Busy responses are not ok and carry kUnavailable.
  bool busy = false;
  uint64_t retry_after_ms = 0;
  // error
  util::StatusCode code = util::StatusCode::kOk;
  std::string message;
  // kHello
  uint64_t session_id = 0;
  std::string banner;
  // kQuery
  uint64_t row_count = 0;
  bool truncated = false;
  std::string table;
  // kStats
  StatsBody stats;
  // kDump
  std::string dump;
};

/// \brief Wraps a payload in a length-prefixed frame. The payload must
/// fit kMaxFrameBytes (encoders below never exceed it; callers framing
/// raw bytes must check).
std::string EncodeFrame(std::string_view payload);

std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

/// \brief Convenience: an error response echoing `opcode`.
std::string EncodeErrorResponse(Opcode opcode, const util::Status& status);

/// \brief Convenience: a shed reply echoing `opcode`, shaped for the
/// connection's negotiated version — a status-2 busy response with the
/// retry-after varint on v2, a byte-compatible kUnavailable error (hint
/// folded into the message) on v1.
std::string EncodeBusyResponse(Opcode opcode, uint64_t retry_after_ms,
                               std::string_view message,
                               uint64_t negotiated_version);

/// \brief Strict decoders: unknown opcodes, truncated fields and
/// trailing bytes are errors (the server answers per-request, the
/// client treats a bad response as a broken server).
util::Result<Request> DecodeRequest(std::string_view payload);
util::Result<Response> DecodeResponse(std::string_view payload);

/// \brief Incremental frame extraction over an append-only stream
/// buffer — the state a connection reader keeps between reads.
class FrameBuffer {
 public:
  void Append(std::string_view bytes) { buffer_.append(bytes); }

  /// \brief Pops the next complete frame payload; std::nullopt when
  /// the buffered bytes end mid-frame (append more and retry). A zero
  /// or oversized length prefix is an error — framing is lost for
  /// good, the connection must close.
  util::Result<std::optional<std::string>> Next();

  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace server
}  // namespace meetxml

#endif  // MEETXML_SERVER_PROTOCOL_H_
