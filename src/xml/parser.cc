#include "xml/parser.h"

#include <cctype>
#include <vector>

#include "util/file_io.h"
#include "util/strings.h"
#include "xml/escape.h"
#include "xml/sax.h"

namespace meetxml {
namespace xml {

using util::Result;
using util::Status;

namespace {

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return input_.size() - pos_; }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool ConsumeIf(std::string_view token) {
    if (remaining() < token.size()) return false;
    if (input_.compare(pos_, token.size(), token) != 0) return false;
    AdvanceBy(token.size());
    return true;
  }

  bool LooksAt(std::string_view token) const {
    return remaining() >= token.size() &&
           input_.compare(pos_, token.size(), token) == 0;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  std::string_view Slice(size_t begin, size_t end) const {
    return input_.substr(begin, end - begin);
  }

  /// Builds a Status with the current position appended.
  template <typename... Args>
  Status Error(Args&&... args) const {
    Status base = Status::InvalidArgument(std::forward<Args>(args)...);
    return Status(base.code(), base.message() + " (line " +
                                   std::to_string(line_) + ", column " +
                                   std::to_string(column_) + ")");
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// The event-producing parser core. Drives a SaxHandler; the DOM parser
// below is just the DomSink handler over this core.
class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseOptions& options,
             SaxHandler* handler)
      : cursor_(input), options_(options), handler_(handler) {}

  Status Run() {
    MEETXML_RETURN_NOT_OK(handler_->StartDocument());
    MEETXML_RETURN_NOT_OK(ParseProlog());
    MEETXML_RETURN_NOT_OK(ParseContent());
    MEETXML_RETURN_NOT_OK(ParseEpilog());
    return handler_->EndDocument();
  }

  const std::string& declaration() const { return declaration_; }
  bool had_doctype() const { return had_doctype_; }

 private:
  Status ParseProlog() {
    cursor_.SkipWhitespace();
    if (cursor_.ConsumeIf("<?xml")) {
      size_t begin = cursor_.pos();
      while (!cursor_.LooksAt("?>")) {
        if (cursor_.AtEnd()) {
          return cursor_.Error("unterminated XML declaration");
        }
        cursor_.Advance();
      }
      declaration_ = std::string(
          util::StripAsciiWhitespace(cursor_.Slice(begin, cursor_.pos())));
      cursor_.ConsumeIf("?>");
    }
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.LooksAt("<!--")) {
        MEETXML_RETURN_NOT_OK(ParseComment(/*in_content=*/false));
      } else if (cursor_.LooksAt("<!DOCTYPE")) {
        if (had_doctype_) return cursor_.Error("duplicate DOCTYPE");
        MEETXML_RETURN_NOT_OK(SkipDoctype());
        had_doctype_ = true;
      } else if (cursor_.LooksAt("<?")) {
        MEETXML_RETURN_NOT_OK(
            ParseProcessingInstruction(/*in_content=*/false));
      } else {
        break;
      }
    }
    if (cursor_.AtEnd() || cursor_.Peek() != '<') {
      return cursor_.Error("expected root element");
    }
    return Status::OK();
  }

  Status ParseEpilog() {
    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd()) return Status::OK();
      if (cursor_.LooksAt("<!--")) {
        MEETXML_RETURN_NOT_OK(ParseComment(/*in_content=*/false));
      } else if (cursor_.LooksAt("<?")) {
        MEETXML_RETURN_NOT_OK(
            ParseProcessingInstruction(/*in_content=*/false));
      } else {
        return cursor_.Error("unexpected content after root element");
      }
    }
  }

  // Iterative content loop with an explicit tag stack; handles
  // arbitrarily deep documents without native stack overflow.
  Status ParseContent() {
    bool root_closed = false;
    while (!root_closed) {
      if (cursor_.AtEnd()) {
        return cursor_.Error("unexpected end of input inside element");
      }
      if (cursor_.Peek() == '<') {
        if (cursor_.LooksAt("<!--")) {
          MEETXML_RETURN_NOT_OK(ParseComment(/*in_content=*/true));
          continue;
        }
        if (cursor_.LooksAt("<![CDATA[")) {
          MEETXML_RETURN_NOT_OK(ParseCdata());
          continue;
        }
        if (cursor_.LooksAt("<?")) {
          MEETXML_RETURN_NOT_OK(
              ParseProcessingInstruction(/*in_content=*/true));
          continue;
        }
        if (cursor_.LooksAt("</")) {
          MEETXML_RETURN_NOT_OK(ParseCloseTag(&root_closed));
          continue;
        }
        MEETXML_RETURN_NOT_OK(ParseOpenTag(&root_closed));
        continue;
      }
      if (tag_stack_.empty()) {
        return cursor_.Error("character data outside root element");
      }
      MEETXML_RETURN_NOT_OK(ParseText());
    }
    return Status::OK();
  }

  Result<std::string> ParseName() {
    size_t begin = cursor_.pos();
    while (!cursor_.AtEnd()) {
      char c = cursor_.Peek();
      if (std::isspace(static_cast<unsigned char>(c)) || c == '>' ||
          c == '/' || c == '=' || c == '<' || c == '?') {
        break;
      }
      cursor_.Advance();
    }
    std::string name(cursor_.Slice(begin, cursor_.pos()));
    if (!IsValidName(name)) {
      return cursor_.Error("invalid name: '", name, "'");
    }
    return name;
  }

  Status ParseOpenTag(bool* root_closed) {
    if (root_seen_ && tag_stack_.empty()) {
      return cursor_.Error("multiple root elements");
    }
    MEETXML_RETURN_NOT_OK(FlushText());
    cursor_.Advance();  // '<'
    MEETXML_ASSIGN_OR_RETURN(std::string tag, ParseName());
    std::vector<Attribute> attributes;

    while (true) {
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd()) return cursor_.Error("unterminated start tag");
      char c = cursor_.Peek();
      if (c == '>' || c == '/') break;
      MEETXML_ASSIGN_OR_RETURN(std::string name, ParseName());
      cursor_.SkipWhitespace();
      if (!cursor_.ConsumeIf("=")) {
        return cursor_.Error("expected '=' after attribute name '", name,
                             "'");
      }
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd() ||
          (cursor_.Peek() != '"' && cursor_.Peek() != '\'')) {
        return cursor_.Error("expected quoted attribute value for '", name,
                             "'");
      }
      char quote = cursor_.Peek();
      cursor_.Advance();
      size_t begin = cursor_.pos();
      while (!cursor_.AtEnd() && cursor_.Peek() != quote) {
        if (cursor_.Peek() == '<') {
          return cursor_.Error("'<' in attribute value of '", name, "'");
        }
        cursor_.Advance();
      }
      if (cursor_.AtEnd()) {
        return cursor_.Error("unterminated attribute value for '", name,
                             "'");
      }
      std::string_view raw = cursor_.Slice(begin, cursor_.pos());
      cursor_.Advance();  // closing quote
      auto decoded = DecodeEntities(raw);
      if (!decoded.ok()) return cursor_.Error(decoded.status().message());
      for (const Attribute& existing : attributes) {
        if (existing.name == name) {
          return cursor_.Error("duplicate attribute '", name, "'");
        }
      }
      attributes.push_back(
          Attribute{std::move(name), std::move(decoded).ValueOrDie()});
    }

    bool self_closing = cursor_.ConsumeIf("/");
    if (!cursor_.ConsumeIf(">")) {
      return cursor_.Error("expected '>' to close start tag");
    }

    root_seen_ = true;
    MEETXML_RETURN_NOT_OK(handler_->StartElement(tag, std::move(attributes)));
    if (self_closing) {
      MEETXML_RETURN_NOT_OK(handler_->EndElement(tag));
      if (tag_stack_.empty()) *root_closed = true;
      return Status::OK();
    }
    if (static_cast<int>(tag_stack_.size()) >= options_.max_depth) {
      return Status::ResourceExhausted("element nesting exceeds limit of ",
                                       options_.max_depth);
    }
    tag_stack_.push_back(std::move(tag));
    return Status::OK();
  }

  Status ParseCloseTag(bool* root_closed) {
    MEETXML_RETURN_NOT_OK(FlushText());
    cursor_.AdvanceBy(2);  // '</'
    MEETXML_ASSIGN_OR_RETURN(std::string tag, ParseName());
    cursor_.SkipWhitespace();
    if (!cursor_.ConsumeIf(">")) {
      return cursor_.Error("expected '>' in closing tag '</", tag, "'");
    }
    if (tag_stack_.empty()) {
      return cursor_.Error("closing tag '</", tag, ">' with no open element");
    }
    if (tag_stack_.back() != tag) {
      return cursor_.Error("mismatched closing tag: expected '</",
                           tag_stack_.back(), ">', got '</", tag, ">'");
    }
    tag_stack_.pop_back();
    MEETXML_RETURN_NOT_OK(handler_->EndElement(tag));
    if (tag_stack_.empty()) *root_closed = true;
    return Status::OK();
  }

  Status ParseText() {
    size_t begin = cursor_.pos();
    bool all_whitespace = true;
    while (!cursor_.AtEnd() && cursor_.Peek() != '<') {
      if (!std::isspace(static_cast<unsigned char>(cursor_.Peek()))) {
        all_whitespace = false;
      }
      cursor_.Advance();
    }
    if (all_whitespace && options_.discard_whitespace_text) {
      return Status::OK();
    }
    std::string_view raw = cursor_.Slice(begin, cursor_.pos());
    auto decoded = DecodeEntities(raw);
    if (!decoded.ok()) return cursor_.Error(decoded.status().message());
    pending_text_ += *decoded;
    has_pending_text_ = true;
    return Status::OK();
  }

  Status ParseCdata() {
    if (tag_stack_.empty()) {
      return cursor_.Error("CDATA section outside root element");
    }
    cursor_.AdvanceBy(9);  // '<![CDATA['
    size_t begin = cursor_.pos();
    while (!cursor_.LooksAt("]]>")) {
      if (cursor_.AtEnd()) return cursor_.Error("unterminated CDATA section");
      cursor_.Advance();
    }
    pending_text_.append(cursor_.Slice(begin, cursor_.pos()));
    has_pending_text_ = true;
    cursor_.AdvanceBy(3);  // ']]>'
    return Status::OK();
  }

  // Emits the accumulated PCDATA/CDATA run as one Text event. The merge
  // implements the paper's "common simplification not to differentiate
  // between PCDATA and CDATA".
  Status FlushText() {
    if (!has_pending_text_) return Status::OK();
    std::string text = std::move(pending_text_);
    pending_text_.clear();
    has_pending_text_ = false;
    return handler_->Text(std::move(text));
  }

  Status ParseComment(bool in_content) {
    cursor_.AdvanceBy(4);  // '<!--'
    size_t begin = cursor_.pos();
    while (!cursor_.LooksAt("-->")) {
      if (cursor_.AtEnd()) return cursor_.Error("unterminated comment");
      if (cursor_.LooksAt("--") && !cursor_.LooksAt("-->")) {
        return cursor_.Error("'--' not allowed inside comment");
      }
      cursor_.Advance();
    }
    std::string content(cursor_.Slice(begin, cursor_.pos()));
    cursor_.AdvanceBy(3);
    if (options_.keep_comments && in_content) {
      // A kept comment separates text runs; a dropped one does not.
      MEETXML_RETURN_NOT_OK(FlushText());
      return handler_->Comment(std::move(content));
    }
    return Status::OK();
  }

  Status ParseProcessingInstruction(bool in_content) {
    cursor_.AdvanceBy(2);  // '<?'
    MEETXML_ASSIGN_OR_RETURN(std::string target, ParseName());
    cursor_.SkipWhitespace();
    size_t begin = cursor_.pos();
    while (!cursor_.LooksAt("?>")) {
      if (cursor_.AtEnd()) {
        return cursor_.Error("unterminated processing instruction");
      }
      cursor_.Advance();
    }
    std::string data(cursor_.Slice(begin, cursor_.pos()));
    cursor_.AdvanceBy(2);
    if (options_.keep_processing_instructions && in_content) {
      MEETXML_RETURN_NOT_OK(FlushText());
      return handler_->ProcessingInstruction(std::move(target),
                                             std::move(data));
    }
    return Status::OK();
  }

  Status SkipDoctype() {
    cursor_.AdvanceBy(9);  // '<!DOCTYPE'
    int bracket_depth = 0;
    while (!cursor_.AtEnd()) {
      char c = cursor_.Peek();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth == 0) {
        cursor_.Advance();
        return Status::OK();
      }
      cursor_.Advance();
    }
    return cursor_.Error("unterminated DOCTYPE");
  }

  Cursor cursor_;
  ParseOptions options_;
  SaxHandler* handler_;
  std::vector<std::string> tag_stack_;
  std::string pending_text_;
  bool has_pending_text_ = false;
  bool root_seen_ = false;
  std::string declaration_;
  bool had_doctype_ = false;
};

// Builds a DOM from the event stream.
class DomSink : public SaxHandler {
 public:
  Status StartElement(std::string tag,
                      std::vector<Attribute> attributes) override {
    auto element = Node::MakeElement(std::move(tag));
    for (Attribute& attribute : attributes) {
      element->AddAttribute(std::move(attribute.name),
                            std::move(attribute.value));
    }
    Node* placed;
    if (stack_.empty()) {
      root_ = std::move(element);
      placed = root_.get();
    } else {
      placed = stack_.back()->AddChild(std::move(element));
    }
    stack_.push_back(placed);
    return Status::OK();
  }

  Status EndElement(std::string_view tag) override {
    (void)tag;
    stack_.pop_back();
    return Status::OK();
  }

  Status Text(std::string text) override {
    stack_.back()->AddText(std::move(text));
    return Status::OK();
  }

  Status Comment(std::string text) override {
    stack_.back()->AddChild(Node::MakeComment(std::move(text)));
    return Status::OK();
  }

  Status ProcessingInstruction(std::string target,
                               std::string data) override {
    stack_.back()->AddChild(
        Node::MakeProcessingInstruction(std::move(target),
                                        std::move(data)));
    return Status::OK();
  }

  std::unique_ptr<Node> TakeRoot() { return std::move(root_); }

 private:
  std::unique_ptr<Node> root_;
  std::vector<Node*> stack_;
};

}  // namespace

Status ParseSax(std::string_view input, SaxHandler* handler,
                const ParseOptions& options) {
  ParserImpl impl(input, options, handler);
  return impl.Run();
}

Result<Document> Parse(std::string_view input, const ParseOptions& options) {
  DomSink sink;
  ParserImpl impl(input, options, &sink);
  MEETXML_RETURN_NOT_OK(impl.Run());
  Document doc;
  doc.root = sink.TakeRoot();
  doc.declaration = impl.declaration();
  doc.had_doctype = impl.had_doctype();
  return doc;
}

Result<Document> ParseFile(const std::string& path,
                           const ParseOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(std::string content,
                           util::ReadFileToString(path));
  return Parse(content, options);
}

}  // namespace xml
}  // namespace meetxml
