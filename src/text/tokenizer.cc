#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace meetxml {
namespace text {

std::vector<std::string> Tokenize(std::string_view s,
                                  const TokenizerOptions& options) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    if (current.size() >= options.min_token_length) {
      out.push_back(current);
    }
    current.clear();
  };
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(options.fold_case
                            ? static_cast<char>(std::tolower(c))
                            : raw);
    } else {
      flush();
    }
  }
  flush();
  return out;
}

std::vector<std::string> TokenizeUnique(std::string_view s,
                                        const TokenizerOptions& options) {
  std::vector<std::string> tokens = Tokenize(s, options);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

bool MatchesPhrase(std::string_view value,
                   const std::vector<std::string>& phrase_tokens) {
  if (phrase_tokens.empty()) return false;
  std::vector<std::string> tokens = Tokenize(value);
  if (tokens.size() < phrase_tokens.size()) return false;
  for (size_t start = 0; start + phrase_tokens.size() <= tokens.size();
       ++start) {
    size_t i = 0;
    while (i < phrase_tokens.size() &&
           tokens[start + i] == phrase_tokens[i]) {
      ++i;
    }
    if (i == phrase_tokens.size()) return true;
  }
  return false;
}

}  // namespace text
}  // namespace meetxml
