// Object identifiers (OIDs) for nodes of the XML syntax tree.
//
// Mirrors MonetDB's oid column type: a dense, document-scoped unsigned
// integer. The shredder assigns OIDs in depth-first traversal order
// (paper §2, Figure 1), which makes ancestor checks and depth-ordered
// scans cheap.

#ifndef MEETXML_BAT_OID_H_
#define MEETXML_BAT_OID_H_

#include <cstdint>
#include <limits>

namespace meetxml {
namespace bat {

/// \brief A node identifier, dense per document, assigned in DFS order.
using Oid = uint32_t;

/// \brief Sentinel for "no node" (e.g. the parent of the root).
inline constexpr Oid kInvalidOid = std::numeric_limits<Oid>::max();

/// \brief Identifier of a schema path in the path summary.
using PathId = uint32_t;

/// \brief Sentinel for "no path" (e.g. the parent path of the root path).
inline constexpr PathId kInvalidPathId =
    std::numeric_limits<PathId>::max();

}  // namespace bat
}  // namespace meetxml

#endif  // MEETXML_BAT_OID_H_
