// Tests for thesaurus-based query expansion (paper §4's "thesauri ...
// to broaden a search that returned too few answers").

#include <gtest/gtest.h>

#include "core/meet_general.h"
#include "data/paper_example.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "text/thesaurus.h"

namespace meetxml {
namespace text {
namespace {

using meetxml::testing::MustShred;

TEST(Thesaurus, ExpandReturnsTermItselfFirst) {
  Thesaurus thesaurus;
  thesaurus.AddRing({"article", "paper", "publication"});
  auto expansion = thesaurus.Expand("paper");
  ASSERT_GE(expansion.size(), 3u);
  EXPECT_EQ(expansion[0], "paper");
}

TEST(Thesaurus, RingIsSymmetric) {
  Thesaurus thesaurus;
  thesaurus.AddRing({"car", "automobile"});
  auto a = thesaurus.Expand("car");
  auto b = thesaurus.Expand("automobile");
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_NE(std::find(a.begin(), a.end(), "automobile"), a.end());
  EXPECT_NE(std::find(b.begin(), b.end(), "car"), b.end());
}

TEST(Thesaurus, UnknownTermExpandsToItself) {
  Thesaurus thesaurus;
  auto expansion = thesaurus.Expand("whatever");
  ASSERT_EQ(expansion.size(), 1u);
  EXPECT_EQ(expansion[0], "whatever");
}

TEST(Thesaurus, LookupsFoldCase) {
  Thesaurus thesaurus;
  thesaurus.AddRing({"Hack", "Crack"});
  auto expansion = thesaurus.Expand("HACK");
  EXPECT_EQ(expansion.size(), 2u);
}

TEST(Thesaurus, OverlappingRingsUnion) {
  Thesaurus thesaurus;
  thesaurus.AddRing({"a", "b"});
  thesaurus.AddRing({"a", "c"});
  auto expansion = thesaurus.Expand("a");
  EXPECT_EQ(expansion.size(), 3u);
}

TEST(Thesaurus, FromTextParsesRingsAndComments) {
  auto thesaurus = Thesaurus::FromText(
      "# synonyms\n"
      "car, automobile, vehicle\n"
      "\n"
      "hack , crack\n");
  ASSERT_TRUE(thesaurus.ok()) << thesaurus.status();
  EXPECT_EQ(thesaurus->Expand("vehicle").size(), 3u);
  EXPECT_EQ(thesaurus->Expand("crack").size(), 2u);
}

TEST(Thesaurus, FromTextRejectsSingletonRing) {
  EXPECT_FALSE(Thesaurus::FromText("lonely\n").ok());
}

// ---- SearchExpanded ------------------------------------------------------

class SearchExpandedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = MustShred(data::PaperExampleXml());
    auto search = FullTextSearch::Build(doc_);
    ASSERT_TRUE(search.ok());
    search_ = std::make_unique<FullTextSearch>(std::move(*search));
    thesaurus_.AddRing({"hack", "crack", "exploit"});
    thesaurus_.AddRing({"ben", "benjamin"});
  }

  model::StoredDocument doc_;
  std::unique_ptr<FullTextSearch> search_;
  Thesaurus thesaurus_;
};

TEST_F(SearchExpandedTest, MergesSynonymMatches) {
  // 'exploit' alone matches nothing; the ring pulls in 'hack' matches.
  auto matches = SearchExpanded(*search_, thesaurus_, "exploit");
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches->term, "exploit");
  EXPECT_EQ(matches->total(), 2u);  // both titles contain "hack"
}

TEST_F(SearchExpandedTest, ExpandBelowGatesExpansion) {
  ExpandedSearchOptions options;
  options.expand_below = 1;  // only expand when direct search is empty
  // Direct 'ben' already matches -> no expansion happens.
  auto direct = SearchExpanded(*search_, thesaurus_, "ben", options);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->total(), 1u);

  // 'exploit' matches nothing -> expansion kicks in.
  auto expanded = SearchExpanded(*search_, thesaurus_, "exploit", options);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->total(), 2u);
}

TEST_F(SearchExpandedTest, DeduplicatesAcrossSynonyms) {
  // 'hack' and 'crack'... both "Hacking & RSI" and "How to Hack" match
  // 'hack'; crack matches nothing; union must not duplicate.
  auto matches = SearchExpanded(*search_, thesaurus_, "hack");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->total(), 2u);
}

TEST_F(SearchExpandedTest, ExpandedMatchesFeedTheMeet) {
  // "benjamin" (via ring -> "ben") + "1999": nearest concept is the
  // article, exactly as with the direct terms.
  auto ben = SearchExpanded(*search_, thesaurus_, "benjamin");
  auto year = search_->Search("1999", MatchMode::kContains);
  ASSERT_TRUE(ben.ok() && year.ok());
  auto inputs = FullTextSearch::ToMeetInput({*ben, *year});
  auto meets = core::MeetGeneral(doc_, inputs);
  ASSERT_TRUE(meets.ok());
  ASSERT_FALSE(meets->empty());
  EXPECT_EQ(doc_.tag((*meets)[0].meet), "article");
}

}  // namespace
}  // namespace text
}  // namespace meetxml
