// Bibliography search: the paper's §5 case study as an application.
//
// Generates a DBLP-shaped bibliography, then answers "list all
// publications in the <venue> proceedings of <year>" by combining
// full-text search with the meet operator (root excluded, as in the
// paper). Shows the top results as reassembled XML.
//
// Run:  ./bibliography_search [venue] [year]
//       ./bibliography_search ICDE 1997

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/browse.h"
#include "core/meet_general.h"
#include "core/ranking.h"
#include "core/restrictions.h"
#include "data/dblp_gen.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "text/search.h"
#include "util/timer.h"

using namespace meetxml;  // example code; the library itself never does this

int main(int argc, char** argv) {
  std::string venue = argc > 1 ? argv[1] : "ICDE";
  std::string year = argc > 2 ? argv[2] : "1997";

  // Generate and load the synthetic bibliography.
  data::DblpOptions gen_options;
  gen_options.icde_papers_per_year = 40;
  gen_options.other_papers_per_year = 120;
  gen_options.journal_articles_per_year = 40;
  auto generated = data::GenerateDblp(gen_options);
  MEETXML_CHECK_OK(generated.status());

  util::Timer load_timer;
  auto doc_result = model::Shred(*generated);
  MEETXML_CHECK_OK(doc_result.status());
  const model::StoredDocument& doc = *doc_result;
  std::printf("Bibliography: %zu nodes, %zu schema paths (loaded in "
              "%.1f ms).\n",
              doc.node_count(), doc.paths().size(),
              load_timer.ElapsedMillis());

  auto search_result = text::FullTextSearch::Build(doc);
  MEETXML_CHECK_OK(search_result.status());
  const text::FullTextSearch& search = *search_result;

  // Full-text search for the venue and the year.
  util::Timer search_timer;
  auto matches = search.SearchAll({venue, year}, text::MatchMode::kContains);
  MEETXML_CHECK_OK(matches.status());
  double search_ms = search_timer.ElapsedMillis();
  std::printf("Full-text: '%s' -> %zu matches, '%s' -> %zu matches "
              "(%.1f ms).\n",
              venue.c_str(), (*matches)[0].total(), year.c_str(),
              (*matches)[1].total(), search_ms);

  // Meet with the document root excluded (the paper's meet_X).
  util::Timer meet_timer;
  std::vector<size_t> source_terms;
  auto inputs = text::FullTextSearch::ToMeetInput(*matches, &source_terms);
  auto meets =
      core::MeetGeneral(doc, inputs, core::ExcludeRootOptions(doc));
  MEETXML_CHECK_OK(meets.status());
  double meet_ms = meet_timer.ElapsedMillis();
  std::printf("Meet: %zu nearest concepts (%.2f ms).\n\n", meets->size(),
              meet_ms);

  // Rank (paper §4's heuristics), require both terms covered, and
  // present the top answers as browsable snippets.
  core::RankingOptions ranking_options;
  ranking_options.source_groups = &source_terms;
  auto ranked = core::FilterBySourceCoverage(
      core::RankMeets(doc, std::move(*meets), ranking_options), 2);
  std::vector<core::GeneralMeet> top;
  for (core::RankedMeet& entry : ranked) {
    if (top.size() >= 3) break;
    top.push_back(std::move(entry.meet));
  }
  auto answers = core::BuildAnswers(doc, top);
  MEETXML_CHECK_OK(answers.status());
  for (const core::Answer& answer : *answers) {
    std::printf("-- %s\n", core::RenderAnswer(answer).c_str());
  }
  if (answers->empty()) {
    std::printf("No publication combines '%s' and '%s'.\n", venue.c_str(),
                year.c_str());
  }
  return 0;
}
