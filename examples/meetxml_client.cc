// meetxml_client: a line client for meetxmld.
//
// Run:  ./meetxml_client <port> [scope] [query]
//       ./meetxml_client <port> stats
//       ./meetxml_client <port> dump
// Flags (anywhere on the line):
//       --connect-timeout-ms N   TCP connect deadline (default 5000)
//       --io-timeout-ms N        per-send/recv deadline (default 15000)
//
// With a query on the command line it runs once and exits; without
// one it reads queries from stdin (one per line, scope fixed by
// argv[2], default "*") — an interactive nearest-concept session
// against a running daemon.
//
// Overload behavior: a busy reply (the daemon shed the query at its
// admission cap or queue deadline) makes the one-shot path retry with
// exponential backoff seeded from the server's retry-after hint, plus
// jitter so a fleet of synchronized clients does not re-stampede the
// daemon on the same tick. The interactive path reports the hint and
// leaves the retry to the human. Both socket deadlines turn a hung or
// half-dead daemon into a clean Unavailable error instead of a client
// that blocks forever.
//
// `stats` prints the protocol-v2 STATS body: the legacy counters plus
// a latency table (count / sum / p50 / p90 / p99 in microseconds) for
// every histogram the server tracks. `dump` prints the DUMP opcode's
// Prometheus-style exposition and query-log tail verbatim — the live
// introspection surface for a serving daemon.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "util/net.h"

using namespace meetxml;  // example code; the library itself never does this

namespace {

util::Result<server::Response> Roundtrip(int fd,
                                         const server::Request& request) {
  MEETXML_RETURN_NOT_OK(util::WriteFull(
      fd, server::EncodeFrame(server::EncodeRequest(request))));
  char prefix[4];
  MEETXML_RETURN_NOT_OK(util::ReadFull(fd, prefix, sizeof(prefix)));
  uint32_t length = server::DecodeFrameLength(prefix);
  if (length == 0 || length > server::kMaxFrameBytes) {
    return util::Status::Internal("bad response frame length ", length);
  }
  std::string payload(length, '\0');
  MEETXML_RETURN_NOT_OK(util::ReadFull(fd, payload.data(), length));
  return server::DecodeResponse(payload);
}

uint64_t JitterMs(uint64_t bound) {
  if (bound == 0) return 0;
  static std::mt19937_64 rng{std::random_device{}()};
  return rng() % bound;
}

// One query; `busy_retries` > 0 retries shed queries with exponential
// backoff from the server's retry-after hint (plus jitter).
int RunQuery(int fd, const std::string& scope, const std::string& query,
             int busy_retries) {
  server::Request request;
  request.opcode = server::Opcode::kQuery;
  request.scope = scope;
  request.query = query;
  for (int attempt = 0;; ++attempt) {
    auto response = Roundtrip(fd, request);
    if (!response.ok()) {
      std::fprintf(stderr, "transport error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    if (response->busy) {
      uint64_t hint =
          response->retry_after_ms != 0 ? response->retry_after_ms : 100;
      if (attempt >= busy_retries) {
        std::fprintf(
            stderr, "server busy: %s (retry in ~%llu ms)\n",
            response->message.c_str(),
            static_cast<unsigned long long>(hint));
        return 1;
      }
      uint64_t backoff = hint << std::min(attempt, 6);
      uint64_t delay = backoff + JitterMs(backoff / 2 + 1);
      std::fprintf(stderr, "server busy — retrying in %llu ms (%d/%d)\n",
                   static_cast<unsigned long long>(delay), attempt + 1,
                   busy_retries);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      continue;
    }
    if (!response->ok) {
      std::fprintf(stderr, "query error: %s\n", response->message.c_str());
      return 1;
    }
    std::printf("%s", response->table.c_str());
    if (response->truncated) {
      std::printf("... (truncated at %llu rows; add LIMIT)\n",
                  static_cast<unsigned long long>(response->row_count));
    }
    return 0;
  }
}

int RunStats(int fd) {
  server::Request request;
  request.opcode = server::Opcode::kStats;
  auto response = Roundtrip(fd, request);
  if (!response.ok() || !response->ok) {
    std::fprintf(stderr, "stats error: %s\n",
                 response.ok() ? response->message.c_str()
                               : response.status().ToString().c_str());
    return 1;
  }
  const server::StatsBody& stats = response->stats;
  std::printf("queries_served   %llu\n"
              "request_errors   %llu\n"
              "sessions_active  %llu\n"
              "sessions_evicted %llu\n",
              static_cast<unsigned long long>(stats.queries_served),
              static_cast<unsigned long long>(stats.request_errors),
              static_cast<unsigned long long>(stats.sessions_active),
              static_cast<unsigned long long>(stats.sessions_evicted));
  if (stats.version < 2) {
    std::printf("(v1 server: no histogram summaries)\n");
    return 0;
  }
  std::printf("\n%-44s %10s %12s %8s %8s %8s\n", "histogram", "count",
              "sum", "p50", "p90", "p99");
  for (const server::StatsHistogramEntry& entry : stats.histograms) {
    std::printf("%-44s %10llu %12llu %8llu %8llu %8llu\n",
                entry.name.c_str(),
                static_cast<unsigned long long>(entry.count),
                static_cast<unsigned long long>(entry.sum),
                static_cast<unsigned long long>(entry.p50),
                static_cast<unsigned long long>(entry.p90),
                static_cast<unsigned long long>(entry.p99));
  }
  return 0;
}

int RunDump(int fd) {
  server::Request request;
  request.opcode = server::Opcode::kDump;
  auto response = Roundtrip(fd, request);
  if (!response.ok() || !response->ok) {
    std::fprintf(stderr, "dump error: %s\n",
                 response.ok() ? response->message.c_str()
                               : response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", response->dump.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t connect_timeout_ms = 5000;
  uint64_t io_timeout_ms = 15000;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect-timeout-ms") == 0 && i + 1 < argc) {
      connect_timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--io-timeout-ms") == 0 &&
               i + 1 < argc) {
      io_timeout_ms = std::strtoull(argv[++i], nullptr, 10);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: %s <port> [scope] [query]\n"
                 "       %s <port> stats|dump\n"
                 "flags: --connect-timeout-ms N  --io-timeout-ms N\n",
                 argv[0], argv[0]);
    return 2;
  }
  uint16_t port = static_cast<uint16_t>(std::stoi(positional[0]));
  std::string scope = positional.size() > 1 ? positional[1] : "*";

  auto fd = util::ConnectTcp("localhost", port, connect_timeout_ms);
  MEETXML_CHECK_OK(fd.status());
  if (io_timeout_ms > 0) {
    MEETXML_CHECK_OK(util::SetRecvTimeoutMs(*fd, io_timeout_ms));
    MEETXML_CHECK_OK(util::SetSendTimeoutMs(*fd, io_timeout_ms));
  }

  server::Request hello;
  hello.opcode = server::Opcode::kHello;
  hello.protocol_version = server::kProtocolVersion;
  auto greeted = Roundtrip(*fd, hello);
  MEETXML_CHECK_OK(greeted.status());
  if (!greeted->ok) {
    std::fprintf(stderr, "refused: %s\n", greeted->message.c_str());
    util::CloseSocket(*fd);
    return 1;
  }

  int exit_code = 0;
  if (positional.size() == 2 && (scope == "stats" || scope == "dump")) {
    exit_code = scope == "stats" ? RunStats(*fd) : RunDump(*fd);
  } else if (positional.size() > 2) {
    exit_code = RunQuery(*fd, scope, positional[2], /*busy_retries=*/5);
  } else {
    std::fprintf(stderr, "%s session %llu, scope %s — one query per "
                 "line, Ctrl-D to quit\n",
                 greeted->banner.c_str(),
                 static_cast<unsigned long long>(greeted->session_id),
                 scope.c_str());
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      RunQuery(*fd, scope, line, /*busy_retries=*/0);
    }
  }

  server::Request bye;
  bye.opcode = server::Opcode::kBye;
  Roundtrip(*fd, bye).ok();
  util::CloseSocket(*fd);
  return exit_code;
}
