#include "core/browse.h"

#include <algorithm>

#include "model/reassembly.h"

namespace meetxml {
namespace core {

using util::Result;
using util::Status;

Result<std::vector<Answer>> BuildAnswers(
    const StoredDocument& doc, const std::vector<GeneralMeet>& meets,
    const BrowseOptions& options) {
  std::vector<Answer> answers;
  for (const GeneralMeet& meet : meets) {
    if (options.max_answers > 0 && answers.size() >= options.max_answers) {
      break;
    }
    Answer answer;
    answer.node = meet.meet;
    answer.witness_distance = meet.witness_distance;
    answer.witness_count = meet.witnesses.size();

    // Breadcrumb from the root.
    std::vector<Oid> chain;
    for (Oid cur = meet.meet;; cur = doc.parent(cur)) {
      chain.push_back(cur);
      if (cur == doc.root()) break;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      answer.context.push_back(doc.tag(*it));
    }

    MEETXML_ASSIGN_OR_RETURN(
        std::string xml_text,
        model::ReassembleToXml(doc, meet.meet, options.snippet_indent));
    if (xml_text.size() > options.max_snippet_bytes) {
      xml_text.resize(options.max_snippet_bytes);
      xml_text.append("...");
      answer.snippet_truncated = true;
    }
    answer.snippet = std::move(xml_text);
    answers.push_back(std::move(answer));
  }
  return answers;
}

Oid EnclosingConcept(
    const StoredDocument& doc, Oid node,
    const std::unordered_set<std::string>& concept_tags) {
  for (Oid cur = node;; cur = doc.parent(cur)) {
    if (!doc.is_cdata(cur) && concept_tags.count(doc.tag(cur))) {
      return cur;
    }
    if (cur == doc.root()) return doc.root();
  }
}

std::string RenderAnswer(const Answer& answer) {
  std::string out;
  for (size_t i = 0; i < answer.context.size(); ++i) {
    if (i > 0) out += " > ";
    out += answer.context[i];
  }
  out += "   (distance " + std::to_string(answer.witness_distance) +
         ", " + std::to_string(answer.witness_count) + " witnesses)\n";
  out += answer.snippet;
  out += "\n";
  return out;
}

}  // namespace core
}  // namespace meetxml
