// Random XML document generator for property-based tests.
//
// Produces arbitrary (but deterministic, seed-driven) documents with
// configurable size, fan-out, depth, tag vocabulary, attribute and text
// density — the adversarial input space for the meet/LCA property tests.

#ifndef MEETXML_DATA_RANDOM_TREE_H_
#define MEETXML_DATA_RANDOM_TREE_H_

#include <cstdint>

#include "util/result.h"
#include "xml/dom.h"

namespace meetxml {
namespace data {

/// \brief Random tree shape knobs.
struct RandomTreeOptions {
  uint64_t seed = 1;
  /// Target number of element nodes (the generator lands close to it).
  int target_elements = 200;
  /// Maximum children per element.
  int max_fanout = 6;
  /// Maximum element depth.
  int max_depth = 12;
  /// Size of the tag vocabulary; small vocabularies produce recursive
  /// schemas (same tag at many depths), stressing the path summary.
  int tag_vocabulary = 8;
  /// Probability an element carries each of up to 3 attributes.
  double attribute_prob = 0.3;
  /// Probability an element has a text child.
  double text_prob = 0.5;
};

/// \brief Generates a random document. Deterministic in the options.
util::Result<xml::Document> GenerateRandomTree(
    const RandomTreeOptions& options);

}  // namespace data
}  // namespace meetxml

#endif  // MEETXML_DATA_RANDOM_TREE_H_
