// General meet over arbitrarily many association sets — the meet
// algorithm of paper §3.2/Figure 5, the form used on full-text search
// results.
//
// Inputs are association sets grouped by type (path). The algorithm
// rolls the tree-shaped schema up from the bottom: paths are processed
// children-before-parents; at every node where at least two input items
// converge, that node is emitted as a meet and the items are consumed
// ("all nodes that are meets of other nodes are minimal by construction;
// they are output and not considered anymore, thus avoiding a
// combinatorial explosion of the result set and dependence on the input
// order"). Lone items keep climbing; an item that reaches the root alone
// produces nothing.

#ifndef MEETXML_CORE_MEET_GENERAL_H_
#define MEETXML_CORE_MEET_GENERAL_H_

#include <vector>

#include "core/input_set.h"
#include "core/restrictions.h"
#include "util/result.h"

namespace meetxml {
namespace core {

/// \brief One witness item consumed by a general meet.
struct MeetWitness {
  /// The original association.
  Assoc assoc;
  /// Index of the input set the association came from.
  size_t source;
  /// Edges between the original association and the meet node.
  int distance;
};

/// \brief One result of the general meet: a nearest-concept node plus
/// everything it covered.
struct GeneralMeet {
  Oid meet;
  PathId meet_path;
  std::vector<MeetWitness> witnesses;
  /// Edges between the two farthest witnesses (sum of the two largest
  /// witness distances) — the ranking key of paper §4.
  int witness_distance;
};

/// \brief Execution counters for benchmarks and the top-k pruning proof.
struct MeetGeneralStats {
  size_t items_seeded = 0;
  size_t lifts = 0;         // parent steps executed
  size_t paths_touched = 0; // schema paths visited by the roll-up
  /// Meets that passed the path/distance restrictions — the exact size
  /// of the unbounded answer, counted even when the bounded heap or the
  /// shared ceiling drops the candidate.
  size_t meets_found = 0;
  /// Meets whose witnesses were actually materialized (== meets_found
  /// on an unbounded run; strictly smaller when top-k pruning bites).
  size_t meets_materialized = 0;
  /// Qualifying meets rejected before witness materialization by the
  /// heap bound or the shared distance ceiling.
  size_t meets_pruned = 0;
};

/// \brief meet(R1, ..., Rn) over any number of association sets.
///
/// Duplicate associations (same path and node, any sources) are merged
/// into one item that remembers all sources. Results are ordered by
/// ascending witness_distance, then meet OID (the paper's join-count
/// ranking heuristic).
util::Result<std::vector<GeneralMeet>> MeetGeneral(
    const StoredDocument& doc, const std::vector<AssocSet>& inputs,
    const MeetOptions& options = {}, MeetGeneralStats* stats = nullptr);

/// \brief Convenience for tests: the meets of a bag of plain nodes.
util::Result<std::vector<GeneralMeet>> MeetGeneralNodes(
    const StoredDocument& doc, const std::vector<Oid>& nodes,
    const MeetOptions& options = {});

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_MEET_GENERAL_H_
