#include "data/paper_example.h"

namespace meetxml {
namespace data {

std::string PaperExampleXml() {
  return R"(<bibliography>
  <institute>
    <article key="BB99">
      <author>
        <firstname>Ben</firstname>
        <lastname>Bit</lastname>
      </author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>
)";
}

}  // namespace data
}  // namespace meetxml
