// Tests for binary persistence of the Monet transform: round-trips,
// corruption rejection, file I/O.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/meet_pair.h"
#include "data/dblp_gen.h"
#include "data/paper_example.h"
#include "data/random_tree.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "tests/test_util.h"
#include "xml/serializer.h"

namespace meetxml {
namespace model {
namespace {

using meetxml::testing::FindCdataNode;
using meetxml::testing::MustShred;

StoredDocument RoundTrip(const StoredDocument& doc) {
  auto bytes = SaveToBytes(doc);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  auto loaded = LoadFromBytes(*bytes);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return std::move(*loaded);
}

TEST(StorageIo, RoundTripsPaperExample) {
  StoredDocument original = MustShred(data::PaperExampleXml());
  StoredDocument loaded = RoundTrip(original);

  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_EQ(loaded.string_count(), original.string_count());
  EXPECT_EQ(loaded.paths().size(), original.paths().size());
  for (bat::Oid oid = 0; oid < original.node_count(); ++oid) {
    EXPECT_EQ(loaded.parent(oid), original.parent(oid));
    EXPECT_EQ(loaded.path(oid), original.path(oid));
    EXPECT_EQ(loaded.rank(oid), original.rank(oid));
  }
  // Reassembly of the loaded image matches the original document.
  auto original_xml = ReassembleToXml(original, original.root(), 0);
  auto loaded_xml = ReassembleToXml(loaded, loaded.root(), 0);
  ASSERT_TRUE(original_xml.ok() && loaded_xml.ok());
  EXPECT_EQ(*loaded_xml, *original_xml);
}

TEST(StorageIo, LoadedImageAnswersMeetQueries) {
  StoredDocument loaded = RoundTrip(MustShred(data::PaperExampleXml()));
  bat::Oid ben = FindCdataNode(loaded, "Ben");
  bat::Oid bit = FindCdataNode(loaded, "Bit");
  auto meet = core::MeetPair(loaded, ben, bit);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(loaded.tag(meet->meet), "author");
}

TEST(StorageIo, RejectsUnfinalizedDocument) {
  StoredDocument doc;
  PathId p = doc.mutable_paths()->Intern(bat::kInvalidPathId,
                                         StepKind::kElement, "a");
  doc.AppendNode(p, bat::kInvalidOid, 0);
  EXPECT_FALSE(SaveToBytes(doc).ok());
}

TEST(StorageIo, RejectsGarbage) {
  EXPECT_FALSE(LoadFromBytes("").ok());
  EXPECT_FALSE(LoadFromBytes("not an image at all").ok());
  EXPECT_FALSE(LoadFromBytes("MXM1").ok());  // header truncated
}

TEST(StorageIo, RejectsTruncation) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto bytes = SaveToBytes(doc);
  ASSERT_TRUE(bytes.ok());
  for (size_t cut : {bytes->size() - 1, bytes->size() / 2, size_t{30}}) {
    auto loaded = LoadFromBytes(bytes->substr(0, cut));
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
}

TEST(StorageIo, RejectsBitFlips) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto bytes = SaveToBytes(doc);
  ASSERT_TRUE(bytes.ok());
  // Flip one byte in the payload: the checksum must catch it.
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x40;
  auto loaded = LoadFromBytes(corrupted);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"),
            std::string::npos);
}

TEST(StorageIo, RejectsWrongVersion) {
  StoredDocument doc = MustShred("<a/>");
  auto bytes = SaveToBytes(doc);
  ASSERT_TRUE(bytes.ok());
  std::string wrong = *bytes;
  wrong[4] = 99;  // version field
  EXPECT_FALSE(LoadFromBytes(wrong).ok());
}

TEST(StorageIo, RejectsTrailingBytes) {
  // Front-directory minors (<= 5) tile the image exactly, so trailing
  // bytes are corruption.
  StoredDocument doc = MustShred("<a/>");
  SaveOptions options;
  options.derived_section = false;
  auto bytes = SaveToBytes(doc, options);
  ASSERT_TRUE(bytes.ok());
  EXPECT_FALSE(LoadFromBytes(*bytes + "extra").ok());
}

TEST(StorageIo, TrailingDirectoryMinorToleratesTrailingBytes) {
  // Minor 6 locates everything through the directory pointer, so bytes
  // past the directory are dead space — exactly what a crashed in-place
  // append leaves behind. The image must still load.
  StoredDocument doc = MustShred("<a/>");
  auto bytes = SaveToBytes(doc);
  ASSERT_TRUE(bytes.ok());
  auto loaded = LoadFromBytes(*bytes + "extra");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->node_count(), doc.node_count());
}

TEST(StorageIo, FileRoundTrip) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_io_test.mxm")
          .string();
  MEETXML_CHECK_OK(SaveToFile(doc, path));
  auto loaded = LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->node_count(), doc.node_count());
  std::remove(path.c_str());
}

TEST(StorageIo, MissingFileIsNotFound) {
  auto loaded = LoadFromFile("/nonexistent/path/file.mxm");
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

// --- Columnar (DOC1/DOC2) vs row-oriented (DOC0) payloads -------------

TEST(StorageIo, DerivedColumnarIsTheDefaultAndStampsMinor6) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto bytes = SaveToBytes(doc);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ((*bytes)[4], 6);  // minor revision field
  auto sections = LoadSectionsFromBytes(*bytes);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections->sections.size(), 2u);
  EXPECT_EQ(sections->sections[0].id, kAlignedColumnarDocumentSectionId);
  EXPECT_EQ(sections->sections[1].id, kDerivedSectionId);

  SaveOptions plain_options;  // opting out of DRV1 stays on minor 5
  plain_options.derived_section = false;
  auto plain_bytes = SaveToBytes(doc, plain_options);
  ASSERT_TRUE(plain_bytes.ok());
  EXPECT_EQ((*plain_bytes)[4], 5);
  auto plain_sections = LoadSectionsFromBytes(*plain_bytes);
  ASSERT_TRUE(plain_sections.ok());
  ASSERT_EQ(plain_sections->sections.size(), 1u);
  EXPECT_EQ(plain_sections->sections[0].id,
            kAlignedColumnarDocumentSectionId);

  SaveOptions unaligned_options;
  unaligned_options.payload_format =
      DocumentPayloadFormat::kColumnarUnaligned;
  auto unaligned_bytes = SaveToBytes(doc, unaligned_options);
  ASSERT_TRUE(unaligned_bytes.ok());
  EXPECT_EQ((*unaligned_bytes)[4], 4);
  auto unaligned_sections = LoadSectionsFromBytes(*unaligned_bytes);
  ASSERT_TRUE(unaligned_sections.ok());
  EXPECT_EQ(unaligned_sections->sections[0].id, kColumnarDocumentSectionId);

  SaveOptions row_options;
  row_options.payload_format = DocumentPayloadFormat::kRowOriented;
  auto row_bytes = SaveToBytes(doc, row_options);
  ASSERT_TRUE(row_bytes.ok());
  EXPECT_EQ((*row_bytes)[4], 2);
  auto row_sections = LoadSectionsFromBytes(*row_bytes);
  ASSERT_TRUE(row_sections.ok());
  EXPECT_EQ(row_sections->sections[0].id, kDocumentSectionId);
}

TEST(StorageIo, AlignedColumnarColumnsSitOn4ByteOffsets) {
  // The property DOC2 exists for: every raw u32 column starts on a
  // 4-byte boundary of the image, so a view-mode load can hand out
  // typed spans. Proxy check: a view-mode load of the default image
  // reports zero copied bytes (it could not if any column were
  // misaligned).
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto bytes = SaveToBytes(doc);
  ASSERT_TRUE(bytes.ok());
  LoadStats stats;
  LoadOptions options;
  options.mode = LoadMode::kView;
  options.stats = &stats;
  auto loaded = LoadFromBytes(*bytes, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(stats.mode_used, LoadMode::kView);
  EXPECT_EQ(stats.bytes_copied, 0u);
  EXPECT_GT(stats.bytes_viewed, 0u);
}

// The byte-equality pin: DOC0-, DOC1- and DOC2-saved images of the
// same document load to byte-identically re-serializable documents,
// in every direction, in both load modes.
void ExpectFormatsRoundTripIdentically(const StoredDocument& doc) {
  SaveOptions row_options;
  row_options.payload_format = DocumentPayloadFormat::kRowOriented;
  SaveOptions unaligned_options;
  unaligned_options.payload_format =
      DocumentPayloadFormat::kColumnarUnaligned;
  auto row_bytes = SaveToBytes(doc, row_options);
  auto unaligned_bytes = SaveToBytes(doc, unaligned_options);
  auto columnar_bytes = SaveToBytes(doc);
  ASSERT_TRUE(row_bytes.ok() && unaligned_bytes.ok() &&
              columnar_bytes.ok());

  auto from_row = LoadFromBytes(*row_bytes);
  auto from_unaligned = LoadFromBytes(*unaligned_bytes);
  auto from_columnar = LoadFromBytes(*columnar_bytes);
  ASSERT_TRUE(from_row.ok()) << from_row.status();
  ASSERT_TRUE(from_unaligned.ok()) << from_unaligned.status();
  ASSERT_TRUE(from_columnar.ok()) << from_columnar.status();

  // Re-serializing any load in any format reproduces the original
  // writer's bytes exactly.
  auto row_again = SaveToBytes(*from_columnar, row_options);
  auto unaligned_again = SaveToBytes(*from_row, unaligned_options);
  auto columnar_again = SaveToBytes(*from_unaligned);
  ASSERT_TRUE(row_again.ok() && unaligned_again.ok() &&
              columnar_again.ok());
  EXPECT_EQ(*row_again, *row_bytes);
  EXPECT_EQ(*unaligned_again, *unaligned_bytes);
  EXPECT_EQ(*columnar_again, *columnar_bytes);

  // And a view-mode load of the aligned image re-serializes to the
  // same bytes without ever copying a column.
  LoadStats stats;
  LoadOptions view_options;
  view_options.mode = LoadMode::kView;
  view_options.stats = &stats;
  auto viewed = LoadFromBytes(*columnar_bytes, view_options);
  ASSERT_TRUE(viewed.ok()) << viewed.status();
  EXPECT_EQ(stats.bytes_copied, 0u);
  EXPECT_TRUE(viewed->view_backed());
  auto viewed_again = SaveToBytes(*viewed);
  ASSERT_TRUE(viewed_again.ok());
  EXPECT_EQ(*viewed_again, *columnar_bytes);
}

TEST(StorageIo, AllPayloadFormatsLoadByteIdentically) {
  ExpectFormatsRoundTripIdentically(MustShred(data::PaperExampleXml()));
}

TEST(StorageIo, RowAndColumnarAgreeOnDblp) {
  data::DblpOptions options;
  options.end_year = 1987;
  auto xml_text = data::GenerateDblpXml(options);
  ASSERT_TRUE(xml_text.ok());
  auto doc = ShredXmlText(*xml_text);
  ASSERT_TRUE(doc.ok());
  ExpectFormatsRoundTripIdentically(*doc);
}

TEST(StorageIo, ColumnarSurvivesExtraSections)  {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  SaveOptions options;
  options.extra_sections.push_back(
      ImageSection{MakeSectionId('X', 'T', 'R', 'A'), "opaque"});
  auto bytes = SaveToBytes(doc, options);
  ASSERT_TRUE(bytes.ok());
  auto image = LoadImageFromBytes(*bytes);
  ASSERT_TRUE(image.ok()) << image.status();
  EXPECT_EQ(image->doc.node_count(), doc.node_count());
  ASSERT_EQ(image->extra_sections.size(), 1u);
  EXPECT_EQ(image->extra_sections[0].bytes, "opaque");
}

TEST(StorageIo, Mxm1IsAlwaysRowOriented) {
  // MXM1 predates DOC1; asking for v1 + columnar still writes the
  // legacy payload, so rollback images stay readable everywhere.
  StoredDocument doc = MustShred(data::PaperExampleXml());
  SaveOptions v1;
  v1.format_version = 1;
  auto bytes = SaveToBytes(doc, v1);
  SaveOptions v1_columnar;
  v1_columnar.format_version = 1;
  v1_columnar.payload_format = DocumentPayloadFormat::kColumnar;
  auto bytes_columnar = SaveToBytes(doc, v1_columnar);
  ASSERT_TRUE(bytes.ok() && bytes_columnar.ok());
  EXPECT_EQ(*bytes, *bytes_columnar);
  auto loaded = LoadFromBytes(*bytes);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->node_count(), doc.node_count());
}

class StorageIoProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorageIoProperty, RandomTreeRoundTrip) {
  data::RandomTreeOptions options;
  options.seed = GetParam();
  options.target_elements = 400;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = Shred(*generated);
  ASSERT_TRUE(shredded.ok());

  StoredDocument loaded = RoundTrip(*shredded);
  auto original_xml = ReassembleToXml(*shredded, shredded->root(), 0);
  auto loaded_xml = ReassembleToXml(loaded, loaded.root(), 0);
  ASSERT_TRUE(original_xml.ok() && loaded_xml.ok());
  EXPECT_EQ(*loaded_xml, *original_xml);

  ExpectFormatsRoundTripIdentically(*shredded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageIoProperty,
                         ::testing::Values(100, 200, 300, 400));

TEST(StorageIo, DblpImageIsSmallerThanXml) {
  data::DblpOptions options;
  options.end_year = 1987;
  auto xml_text = data::GenerateDblpXml(options);
  ASSERT_TRUE(xml_text.ok());
  auto doc = ShredXmlText(*xml_text);
  ASSERT_TRUE(doc.ok());
  SaveOptions plain;
  plain.derived_section = false;
  auto bytes = SaveToBytes(*doc, plain);
  ASSERT_TRUE(bytes.ok());
  // Sanity: the binary image is within 2x of the XML (it stores paths
  // once, not per element).
  EXPECT_LT(bytes->size(), xml_text->size() * 2);
  // With the persisted derived sections (the open-time rebuild traded
  // for bytes) the image still stays within 3x.
  auto derived_bytes = SaveToBytes(*doc);
  ASSERT_TRUE(derived_bytes.ok());
  EXPECT_LT(derived_bytes->size(), xml_text->size() * 3);
}

}  // namespace
}  // namespace model
}  // namespace meetxml
