// Relational (BAT-join) execution of the general meet.
//
// Semantically identical to MeetGeneral (Fig. 5), but executed the way
// the paper's MonetDB implementation runs: the live items of every
// schema path are a binary relation (current node, item), and one lift
// is a join with that path's edge BAT — "they make heavy use of the
// relational operations of the underlying database engine" (§3.2).
// MeetGeneral walks dense parent arrays instead; AB8 quantifies the
// difference, and a property test pins both to identical output.

#ifndef MEETXML_CORE_MEET_GENERAL_RELATIONAL_H_
#define MEETXML_CORE_MEET_GENERAL_RELATIONAL_H_

#include <vector>

#include "core/meet_general.h"

namespace meetxml {
namespace core {

/// \brief Extra counters for the relational execution.
struct RelationalMeetStats {
  size_t joins = 0;        // edge-BAT joins executed
  size_t join_rows = 0;    // total rows produced by the joins
  size_t paths_touched = 0;
};

/// \brief meet(R1..Rn) via per-path BAT joins. Returns exactly the
/// result (values and order) of MeetGeneral on the same input.
util::Result<std::vector<GeneralMeet>> MeetGeneralRelational(
    const StoredDocument& doc, const std::vector<AssocSet>& inputs,
    const MeetOptions& options = {},
    RelationalMeetStats* stats = nullptr);

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_MEET_GENERAL_RELATIONAL_H_
