#include "query/lexer.h"

#include <cctype>
#include <unordered_map>

#include "util/strings.h"

namespace meetxml {
namespace query {

using util::Result;
using util::Status;

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of query";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kString: return "string literal";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kComma: return "','";
    case TokenKind::kLparen: return "'('";
    case TokenKind::kRparen: return "')'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kDoubleSlash: return "'//'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kLessEqual: return "'<='";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kAs: return "AS";
    case TokenKind::kContains: return "CONTAINS";
    case TokenKind::kIcontains: return "ICONTAINS";
    case TokenKind::kWord: return "WORD";
    case TokenKind::kPhrase: return "PHRASE";
    case TokenKind::kSynonym: return "SYNONYM";
    case TokenKind::kMeet: return "MEET";
    case TokenKind::kGraphMeet: return "GMEET";
    case TokenKind::kAncestors: return "ANCESTORS";
    case TokenKind::kTag: return "TAG";
    case TokenKind::kPath: return "PATH";
    case TokenKind::kXml: return "XML";
    case TokenKind::kCount: return "COUNT";
    case TokenKind::kDistance: return "DISTANCE";
    case TokenKind::kExclude: return "EXCLUDE";
    case TokenKind::kWithin: return "WITHIN";
    case TokenKind::kLimit: return "LIMIT";
  }
  return "unknown token";
}

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const std::unordered_map<std::string, TokenKind> kKeywords = {
      {"select", TokenKind::kSelect},     {"from", TokenKind::kFrom},
      {"where", TokenKind::kWhere},       {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},             {"not", TokenKind::kNot},
      {"as", TokenKind::kAs},             {"contains", TokenKind::kContains},
      {"icontains", TokenKind::kIcontains},
      {"word", TokenKind::kWord},         {"meet", TokenKind::kMeet},
      {"phrase", TokenKind::kPhrase},
      {"synonym", TokenKind::kSynonym},
      {"gmeet", TokenKind::kGraphMeet},
      {"ancestors", TokenKind::kAncestors},
      {"tag", TokenKind::kTag},           {"path", TokenKind::kPath},
      {"xml", TokenKind::kXml},           {"count", TokenKind::kCount},
      {"distance", TokenKind::kDistance}, {"exclude", TokenKind::kExclude},
      {"within", TokenKind::kWithin},     {"limit", TokenKind::kLimit},
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == '$';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string piece, size_t at) {
    tokens.push_back(Token{kind, std::move(piece), static_cast<int>(at)});
  };

  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    switch (c) {
      case ',': push(TokenKind::kComma, ",", start); ++i; continue;
      case '(': push(TokenKind::kLparen, "(", start); ++i; continue;
      case ')': push(TokenKind::kRparen, ")", start); ++i; continue;
      case '*': push(TokenKind::kStar, "*", start); ++i; continue;
      case '@': push(TokenKind::kAt, "@", start); ++i; continue;
      case '=': push(TokenKind::kEquals, "=", start); ++i; continue;
      case '/':
        if (i + 1 < text.size() && text[i + 1] == '/') {
          push(TokenKind::kDoubleSlash, "//", start);
          i += 2;
        } else {
          push(TokenKind::kSlash, "/", start);
          ++i;
        }
        continue;
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kLessEqual, "<=", start);
          i += 2;
          continue;
        }
        return Status::InvalidArgument("unexpected '<' at offset ", start);
      case '\'':
      case '"': {
        char quote = c;
        ++i;
        std::string value;
        while (i < text.size() && text[i] != quote) {
          value.push_back(text[i]);
          ++i;
        }
        if (i >= text.size()) {
          return Status::InvalidArgument(
              "unterminated string literal at offset ", start);
        }
        ++i;  // closing quote
        push(TokenKind::kString, std::move(value), start);
        continue;
      }
      default:
        break;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        digits.push_back(text[i]);
        ++i;
      }
      push(TokenKind::kInteger, std::move(digits), start);
      continue;
    }

    if (IsIdentStart(c)) {
      std::string word;
      word.push_back(c);
      ++i;
      while (i < text.size() && IsIdentChar(text[i])) {
        word.push_back(text[i]);
        ++i;
      }
      auto it = Keywords().find(util::ToLowerAscii(word));
      if (it != Keywords().end()) {
        push(it->second, std::move(word), start);
      } else {
        push(TokenKind::kIdentifier, std::move(word), start);
      }
      continue;
    }

    return Status::InvalidArgument("unexpected character '",
                                   std::string(1, c), "' at offset ",
                                   start);
  }
  push(TokenKind::kEof, "", text.size());
  return tokens;
}

}  // namespace query
}  // namespace meetxml
