// Tests for the parallel bulk-load pipeline and index persistence:
// sequential/parallel equivalence (byte-identical storage images),
// MXM2 store round trips, v1 backward compatibility, lazy executor
// index semantics.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dblp_gen.h"
#include "data/random_tree.h"
#include "model/bulk_load.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "query/executor.h"
#include "text/index_io.h"
#include "text/search.h"
#include "tests/test_util.h"
#include "xml/serializer.h"

namespace meetxml {
namespace model {
namespace {

using meetxml::testing::MustShred;

// Forces the pipeline on, regardless of corpus size and machine:
// many small chunks, a fixed thread count.
BulkLoadOptions Forced(unsigned threads, size_t chunk_bytes = 512) {
  BulkLoadOptions options;
  options.threads = threads;
  options.target_chunk_bytes = chunk_bytes;
  options.min_parallel_bytes = 0;
  return options;
}

std::string MustImage(const StoredDocument& doc) {
  auto bytes = SaveToBytes(doc);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return bytes.ok() ? *bytes : std::string();
}

// The pipeline's contract: bit-identical to the sequential shredder.
void ExpectEquivalent(std::string_view xml_text, unsigned threads,
                      size_t chunk_bytes = 512) {
  auto sequential = ShredXmlText(xml_text);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  auto parallel = BulkShredXmlText(xml_text, Forced(threads, chunk_bytes));
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(MustImage(*parallel), MustImage(*sequential))
      << "threads=" << threads << " chunk_bytes=" << chunk_bytes;
}

TEST(BulkLoad, MatchesSequentialOnDblp) {
  data::DblpOptions options;
  options.end_year = 1989;
  auto xml_text = data::GenerateDblpXml(options);
  ASSERT_TRUE(xml_text.ok());
  for (unsigned threads : {1, 2, 8}) {
    ExpectEquivalent(*xml_text, threads, /*chunk_bytes=*/4096);
  }
}

TEST(BulkLoad, MatchesSequentialOnRandomTrees) {
  for (uint64_t seed : {7, 21, 42}) {
    data::RandomTreeOptions options;
    options.seed = seed;
    options.target_elements = 600;
    auto generated = data::GenerateRandomTree(options);
    ASSERT_TRUE(generated.ok());
    xml::SerializeOptions serialize_options;
    serialize_options.indent = 1;
    std::string xml_text = xml::Serialize(*generated, serialize_options);
    for (unsigned threads : {1, 2, 8}) {
      ExpectEquivalent(xml_text, threads);
    }
  }
}

TEST(BulkLoad, HandlesRootAttributesAndTopLevelText) {
  // Leading text, comment-merged text runs, CDATA, trailing text and
  // root attributes all cross the splitter's edge cases.
  std::string xml_text =
      "<?xml version=\"1.0\"?><root a=\"1\" b=\"x &amp; y\">"
      "leading <x/>mid<!-- c -->merged<y k=\"v\">t</y>"
      "<![CDATA[raw <>& text]]>trailing</root>";
  for (unsigned threads : {2, 8}) {
    ExpectEquivalent(xml_text, threads, /*chunk_bytes=*/1);
  }
}

TEST(BulkLoad, HandlesDegenerateRoots) {
  ExpectEquivalent("<a/>", 4);
  ExpectEquivalent("<a>text only</a>", 4);
  ExpectEquivalent("<a><b/></a>", 4);
}

TEST(BulkLoad, RejectsMalformedInput) {
  for (std::string_view bad :
       {"<a><b></a>", "<a>", "<a></a><b/>", "plain text", ""}) {
    auto result = BulkShredXmlText(bad, Forced(4));
    EXPECT_FALSE(result.ok()) << "input: " << bad;
  }
}

TEST(BulkLoadSplit, FindsTopLevelUnits) {
  auto split = internal::SplitTopLevel(
      "<!-- p --><r x=\"a>b\"><one><deep/></one>mid<two/><three/></r>");
  ASSERT_TRUE(split.ok()) << split.status();
  EXPECT_EQ(split->root_tag, "r");
  // Units: <one> (plus trailing "mid" text), <two>, <three>.
  EXPECT_EQ(split->unit_starts.size(), 3u);
}

TEST(BulkLoadSplit, RejectsStructuralAnomalies) {
  EXPECT_FALSE(internal::SplitTopLevel("<r><a></r>").ok());
  EXPECT_FALSE(internal::SplitTopLevel("<r></wrong>").ok());
  EXPECT_FALSE(internal::SplitTopLevel("<r/><r/>").ok());
  EXPECT_FALSE(internal::SplitTopLevel("<r><![CDATA[x</r>").ok());
}

TEST(IndexPersistence, SerializeDeserializeRoundTrip) {
  data::DblpOptions options;
  options.end_year = 1986;
  auto xml_text = data::GenerateDblpXml(options);
  ASSERT_TRUE(xml_text.ok());
  StoredDocument doc = MustShred(*xml_text);

  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  std::string bytes = text::SerializeIndex(*index);
  auto restored = text::DeserializeIndex(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->vocabulary_size(), index->vocabulary_size());
  EXPECT_EQ(restored->posting_count(), index->posting_count());
  EXPECT_EQ(restored->trigram_count(), index->trigram_count());
  EXPECT_EQ(restored->has_trigrams(), index->has_trigrams());
  // Full structural equality of both maps.
  EXPECT_TRUE(restored->words() == index->words());
  EXPECT_TRUE(restored->trigrams() == index->trigrams());
  // Deterministic bytes.
  EXPECT_EQ(text::SerializeIndex(*restored), bytes);
}

TEST(IndexPersistence, StoreRoundTripAnswersQueries) {
  data::DblpOptions options;
  options.end_year = 1986;
  auto xml_text = data::GenerateDblpXml(options);
  ASSERT_TRUE(xml_text.ok());
  StoredDocument doc = MustShred(*xml_text);
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());

  auto bytes = text::SaveStoreToBytes(doc, &*index);
  ASSERT_TRUE(bytes.ok());
  auto store = text::LoadStoreFromBytes(*bytes);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->index.has_value());

  // The persisted-index executor and a fresh one agree.
  auto from_store = query::Executor::Build(
      store->doc,
      text::FullTextSearch::WithIndex(store->doc, std::move(*store->index)));
  ASSERT_TRUE(from_store.ok());
  EXPECT_TRUE(from_store->text_index_built());
  auto fresh = query::Executor::Build(doc);
  ASSERT_TRUE(fresh.ok());

  const char* query =
      "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
      "WHERE a CONTAINS 'ICDE' AND b CONTAINS '1985' LIMIT 10";
  auto lhs = from_store->ExecuteText(query);
  auto rhs = fresh->ExecuteText(query);
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  EXPECT_EQ(lhs->rows, rhs->rows);

  // A plain document load of the same image ignores the TIDX section.
  auto doc_only = LoadFromBytes(*bytes);
  ASSERT_TRUE(doc_only.ok());
  EXPECT_EQ(doc_only->node_count(), doc.node_count());
}

TEST(IndexPersistence, StoreWithoutIndexLoadsEmpty) {
  StoredDocument doc = MustShred("<a><b>hello world</b></a>");
  auto bytes = text::SaveStoreToBytes(doc, nullptr);
  ASSERT_TRUE(bytes.ok());
  auto store = text::LoadStoreFromBytes(*bytes);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->index.has_value());
}

TEST(IndexPersistence, RejectsCorruptIndexPayloads) {
  StoredDocument doc = MustShred("<a><b>hello world again</b></a>");
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  std::string bytes = text::SerializeIndex(*index);
  // Truncations at every prefix must fail cleanly.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(text::DeserializeIndex(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(text::DeserializeIndex(bytes + "x").ok());
}

TEST(StorageCompat, V1ImagesStillLoad) {
  StoredDocument doc = MustShred("<a x=\"1\"><b>two</b><c/></a>");
  SaveOptions v1;
  v1.format_version = 1;
  auto v1_bytes = SaveToBytes(doc, v1);
  ASSERT_TRUE(v1_bytes.ok());
  EXPECT_EQ(v1_bytes->substr(0, 4), "MXM1");

  auto loaded = LoadFromBytes(*v1_bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->node_count(), doc.node_count());
  EXPECT_EQ(loaded->string_count(), doc.string_count());

  auto image = LoadImageFromBytes(*v1_bytes);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->format_version, 1u);
  EXPECT_TRUE(image->extra_sections.empty());

  // Default saves are MXM2 now; both decode to the same document.
  auto v2_bytes = SaveToBytes(doc);
  ASSERT_TRUE(v2_bytes.ok());
  EXPECT_EQ(v2_bytes->substr(0, 4), "MXM2");
  auto v2_loaded = LoadFromBytes(*v2_bytes);
  ASSERT_TRUE(v2_loaded.ok());
  EXPECT_EQ(MustImage(*v2_loaded), MustImage(*loaded));

  // v1 cannot carry sections.
  SaveOptions bad;
  bad.format_version = 1;
  bad.extra_sections.push_back(ImageSection{kTextIndexSectionId, "x"});
  EXPECT_FALSE(SaveToBytes(doc, bad).ok());
}

TEST(LazyExecutor, BuildsIndexOnlyForTextPredicates) {
  StoredDocument doc = MustShred(
      "<lib><book t=\"one\">alpha beta</book><book>gamma</book></lib>");
  auto executor = query::Executor::Build(doc);
  ASSERT_TRUE(executor.ok());
  EXPECT_FALSE(executor->text_index_built());

  // Structural query: no index.
  auto structural = executor->ExecuteText("SELECT COUNT(a) FROM lib//book a");
  ASSERT_TRUE(structural.ok()) << structural.status();
  EXPECT_FALSE(executor->text_index_built());

  // CONTAINS forces the build; results match an eager executor.
  auto text_query = executor->ExecuteText(
      "SELECT a FROM lib//cdata a WHERE a CONTAINS 'alpha'");
  ASSERT_TRUE(text_query.ok()) << text_query.status();
  EXPECT_TRUE(executor->text_index_built());
  EXPECT_EQ(text_query->rows.size(), 1u);
}

}  // namespace
}  // namespace model
}  // namespace meetxml
