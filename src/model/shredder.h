// The Monet transform: shredding a DOM tree into per-path BAT relations
// (paper Definition 4, "bulk load" of §5's case study).

#ifndef MEETXML_MODEL_SHREDDER_H_
#define MEETXML_MODEL_SHREDDER_H_

#include <string_view>
#include <vector>

#include "model/document.h"
#include "util/result.h"
#include "xml/dom.h"
#include "xml/sax.h"

namespace meetxml {
namespace model {

/// \brief Shredding knobs.
struct ShredOptions {
  /// Skip cdata nodes whose text is all-whitespace (defensive; the parser
  /// usually already discards them).
  bool skip_whitespace_cdata = true;
};

/// \brief Shreds a parsed DOM into a finalized StoredDocument.
///
/// OIDs are assigned in depth-first order; attributes become
/// (element, value) associations at `<path>/@name`; each text node
/// becomes a cdata node with its own OID plus a (cdata, text) string
/// association at `<path>/cdata`. Comments and PIs are ignored — they
/// are not part of the paper's data model.
util::Result<StoredDocument> Shred(const xml::Document& doc,
                                   const ShredOptions& options = {});

/// \brief Convenience: parse + shred in one step.
util::Result<StoredDocument> ShredXmlText(std::string_view xml_text,
                                          const ShredOptions& options = {});

/// \brief Streaming bulk load: shreds directly from the SAX event
/// stream without materializing a DOM. Produces a document identical to
/// ShredXmlText's but with roughly half the peak memory — the
/// production path for large corpora (the paper bulk-loads a 200 MB
/// file and the full DBLP).
util::Result<StoredDocument> ShredXmlTextStreaming(
    std::string_view xml_text, const ShredOptions& options = {});

/// \brief Convenience: read file + parse + shred.
util::Result<StoredDocument> ShredXmlFile(const std::string& path,
                                          const ShredOptions& options = {});

namespace internal {

/// \brief SAX sink implementing the streaming Monet transform: interns
/// paths, assigns OIDs in document order and appends string
/// associations exactly like the DOM shredder (tested to agree).
///
/// Exposed for the bulk-load pipeline (model/bulk_load.h), which runs
/// one sink per corpus shard and later rebases the shard relations into
/// the global document; regular callers use ShredXmlTextStreaming.
class ShredSink : public xml::SaxHandler {
 public:
  explicit ShredSink(const ShredOptions& options) : options_(options) {}

  util::Status StartElement(std::string tag,
                            std::vector<xml::Attribute> attributes) override;
  util::Status EndElement(std::string_view tag) override;
  util::Status Text(std::string text) override;

  /// \brief Finalized document, ready for queries (the normal path).
  util::Result<StoredDocument> TakeFinalized();

  /// \brief Raw builder output without derived structures. Shard
  /// merging replays the relations into the global document, so
  /// finalizing the shard would be wasted work.
  StoredDocument TakeUnfinalized() { return std::move(stored_); }

 private:
  struct Frame {
    Oid oid;
    PathId path;
    int next_rank;
  };

  ShredOptions options_;
  StoredDocument stored_;
  std::vector<Frame> stack_;
};

}  // namespace internal

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_SHREDDER_H_
