#include "model/reassembly.h"

#include <vector>

#include "util/result.h"
#include "xml/serializer.h"

namespace meetxml {
namespace model {

using util::Result;
using util::Status;

namespace {

// Iterative rebuild (matching the shredder's iterative DFS): each stack
// frame carries the stored OID and the DOM parent to attach to.
struct Frame {
  Oid oid;
  xml::Node* dom_parent;  // nullptr for the subtree root
};

}  // namespace

Result<std::unique_ptr<xml::Node>> Reassemble(const StoredDocument& doc,
                                              Oid node) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  if (node >= doc.node_count()) {
    return Status::NotFound("no node with OID ", node);
  }

  std::unique_ptr<xml::Node> root;
  std::vector<Frame> stack;
  stack.push_back(Frame{node, nullptr});

  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();

    if (doc.is_cdata(frame.oid)) {
      auto text = xml::Node::MakeText(std::string(doc.CdataValue(frame.oid)));
      if (frame.dom_parent == nullptr) {
        root = std::move(text);
      } else {
        frame.dom_parent->AddChild(std::move(text));
      }
      continue;
    }

    auto element = xml::Node::MakeElement(doc.tag(frame.oid));
    for (const StringAssociation& attr : doc.AttributesOf(frame.oid)) {
      element->AddAttribute(doc.paths().label(attr.path), attr.value);
    }
    xml::Node* placed;
    if (frame.dom_parent == nullptr) {
      root = std::move(element);
      placed = root.get();
    } else {
      placed = frame.dom_parent->AddChild(std::move(element));
    }

    std::vector<Oid> kids = doc.children(frame.oid);
    for (size_t i = kids.size(); i-- > 0;) {
      stack.push_back(Frame{kids[i], placed});
    }
  }
  return root;
}

Result<std::string> ReassembleToXml(const StoredDocument& doc, Oid node,
                                    int indent) {
  MEETXML_ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> tree,
                           Reassemble(doc, node));
  xml::SerializeOptions options;
  options.indent = indent;
  return xml::Serialize(*tree, options);
}

std::string DescribeNode(const StoredDocument& doc, Oid node) {
  std::string out = doc.tag(node);
  out.append(" <");
  out.append(doc.paths().ToString(doc.path(node)));
  out.append(">");
  return out;
}

}  // namespace model
}  // namespace meetxml
