// meetxmld TCP front-end: accept loop, per-connection frame readers,
// and a shared worker pool executing dispatches — the socket skin over
// server/service.h (which owns sessions, limits and execution).
//
// Threading model (pazpar2's eventl/sel_thread split, simplified):
//   * one accept thread;
//   * one blocking reader thread per connection, doing nothing but
//     framing (FrameBuffer) and enqueueing decoded payloads; the inbox
//     is bounded, and a reader that fills it parks until the strand
//     drains, so a pipelining client gets TCP backpressure instead of
//     growing server memory;
//   * a fixed WorkerPool executing dispatches. Each connection is a
//     strand: it is scheduled on the pool only while it has pending
//     frames and never runs on two workers at once, so pipelined
//     requests answer strictly in order while distinct connections
//     spread across the pool;
//   * one maintenance thread evicting idle sessions (closing their
//     sockets) and reaping finished connections.
//
// Robustness contract: a malformed request earns an error response and
// the connection lives on; a framing error (zero/oversized length
// prefix) earns one error response and the connection closes; either
// way the session is released — fuzz bytes never crash the server or
// leak sessions.

#ifndef MEETXML_SERVER_TCP_SERVER_H_
#define MEETXML_SERVER_TCP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"
#include "server/worker_pool.h"
#include "util/result.h"

namespace meetxml {
namespace server {

/// \brief Front-end knobs.
struct TcpServerOptions {
  /// Loopback port; 0 binds an ephemeral port (read it via port()).
  uint16_t port = 0;
  /// Worker pool size; 0 means util::ResolveThreads.
  unsigned workers = 0;
  /// Idle-eviction / reaping cadence.
  uint64_t maintenance_interval_ms = 200;
  /// Per-connection inbox bounds (decoded-but-undispatched frames). A
  /// client pipelining faster than its worker strand drains parks the
  /// connection's reader — TCP backpressure — instead of growing the
  /// queue without limit. Both bounds must be nonzero.
  size_t max_inbox_frames = 128;
  size_t max_inbox_bytes = 4u << 20;
};

/// \brief A running listener bound to one QueryService.
class TcpServer {
 public:
  /// \brief Binds, spawns the threads, returns the running server.
  static util::Result<std::unique_ptr<TcpServer>> Start(
      QueryService* service, const TcpServerOptions& options = {});

  /// \brief Graceful stop: closes the listener, shuts connection read
  /// sides, drains queued dispatches (their responses still deliver),
  /// then closes sockets and sessions. Idempotent.
  void Stop();
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  uint16_t port() const { return port_; }
  /// \brief Live (not yet reaped) connections.
  size_t connection_count() const;

 private:
  /// One queued frame: a request payload stamped with its admission
  /// state, or (ready_reply) a pre-cooked response — the shed path
  /// queues its busy reply through the same inbox so responses keep
  /// strict request order.
  struct InboxItem {
    std::string payload;
    /// Service-clock time Enqueue admitted the request (queue-deadline
    /// enforcement happens at dispatch).
    uint64_t admitted_ms = 0;
    /// Write `payload` verbatim instead of dispatching it.
    bool ready_reply = false;
    /// This item owns an admission slot (TryAcquireQuerySlot at
    /// enqueue); dispatch releases it, teardown must too.
    bool holds_slot = false;
  };

  struct Conn {
    int fd = -1;
    std::unique_ptr<QueryService::Connection> service_conn;
    std::thread reader;
    // Strand state: inbox of decoded frame payloads + whether a pool
    // job is currently draining it. inbox_bytes mirrors the payload
    // bytes queued; the reader waits on inbox_cv while the inbox is at
    // its bound (Pump signals every pop, and anything that ends the
    // connection signals too so the reader never parks forever).
    std::mutex mu;
    std::deque<InboxItem> inbox;
    size_t inbox_bytes = 0;
    bool running = false;
    std::condition_variable inbox_cv;
    std::atomic<bool> reader_done{false};
    // Set on framing/write failure: stop serving this connection.
    std::atomic<bool> dead{false};
    std::mutex write_mu;
  };

  TcpServer(QueryService* service, const TcpServerOptions& options);

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);
  void Enqueue(const std::shared_ptr<Conn>& conn, std::string payload);
  void Pump(std::shared_ptr<Conn> conn);
  void MaintenanceLoop();
  void Reap();

  QueryService* service_;
  TcpServerOptions options_;
  /// Decoded-but-undispatched frames across every connection, in the
  /// service's registry (meetxml_server_inbox_frames).
  obs::Gauge* inbox_gauge_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::unique_ptr<WorkerPool> pool_;

  std::thread accept_thread_;
  std::thread maintenance_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex maintenance_mu_;
  std::condition_variable maintenance_cv_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
};

}  // namespace server
}  // namespace meetxml

#endif  // MEETXML_SERVER_TCP_SERVER_H_
