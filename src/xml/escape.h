// XML character escaping and entity decoding.

#ifndef MEETXML_XML_ESCAPE_H_
#define MEETXML_XML_ESCAPE_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace meetxml {
namespace xml {

/// \brief Escapes `s` for use as element character data: & < >.
std::string EscapeText(std::string_view s);

/// \brief Escapes `s` for use inside a double-quoted attribute value:
/// & < > " and newlines (as character references).
std::string EscapeAttribute(std::string_view s);

/// \brief Decodes the five predefined entities plus decimal/hex character
/// references in `s`. Unknown entities are an error (this parser is
/// non-validating and has no DTD-defined entities).
util::Result<std::string> DecodeEntities(std::string_view s);

/// \brief Appends the UTF-8 encoding of `codepoint` to `out`. Returns
/// false for invalid code points (surrogates, > U+10FFFF).
bool AppendUtf8(uint32_t codepoint, std::string* out);

/// \brief True if `name` is an acceptable element/attribute name for this
/// parser: XML NameStartChar/NameChar restricted to the ASCII subset plus
/// any byte >= 0x80 (UTF-8 continuation-friendly).
bool IsValidName(std::string_view name);

}  // namespace xml
}  // namespace meetxml

#endif  // MEETXML_XML_ESCAPE_H_
