// Fixed worker pool executing queued jobs — the execution engine
// behind the meetxmld TCP front-end (pazpar2 hands socket events to a
// select-thread the same way: the event loop never blocks on work).
//
// Connections are scheduled as strands (tcp_server.cc): a connection
// re-submits itself while it has pending frames, so jobs from one
// connection never run concurrently while different connections spread
// across the pool.

#ifndef MEETXML_SERVER_WORKER_POOL_H_
#define MEETXML_SERVER_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace meetxml {
namespace server {

/// \brief A fixed pool of worker threads draining a FIFO job queue.
class WorkerPool {
 public:
  /// \brief Spawns util::ResolveThreads(threads) workers.
  explicit WorkerPool(unsigned threads);
  /// \brief Drains the queue, then joins (Shutdown implied).
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// \brief Enqueues a job. Jobs submitted after Shutdown are dropped.
  void Submit(std::function<void()> job);

  /// \brief Stops intake, runs every queued job to completion, joins
  /// the workers. Idempotent.
  void Shutdown();

  size_t worker_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace server
}  // namespace meetxml

#endif  // MEETXML_SERVER_WORKER_POOL_H_
