// Status: lightweight error propagation in the Arrow/RocksDB idiom.
//
// Library code in this project does not throw exceptions across public API
// boundaries; fallible operations return util::Status (or util::Result<T>,
// see result.h). A Status is cheap to move (a single pointer; OK carries no
// allocation at all).

#ifndef MEETXML_UTIL_STATUS_H_
#define MEETXML_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace meetxml {
namespace util {

/// \brief Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  /// Malformed input from the outside world (XML syntax error, bad query
  /// text, invalid generator parameters).
  kInvalidArgument = 1,
  /// A lookup failed: unknown OID, unknown path, missing relation.
  kNotFound = 2,
  /// An operation is not supported for the given input shape.
  kNotImplemented = 3,
  /// An internal invariant was violated; indicates a bug in this library.
  kInternal = 4,
  /// Input was syntactically valid but exceeds a configured limit.
  kResourceExhausted = 5,
  /// Parse ran off the end of the input unexpectedly.
  kUnexpectedEof = 6,
  /// The service cannot take the request right now (shutting down,
  /// session table full); retrying later may succeed.
  kUnavailable = 7,
};

/// \brief Human-readable name of a StatusCode, e.g. "Invalid argument".
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: OK, or a code plus message.
///
/// Usage follows the Arrow convention:
/// \code
///   Status DoThing() {
///     if (bad) return Status::InvalidArgument("bad thing: ", detail);
///     return Status::OK();
///   }
///   MEETXML_RETURN_NOT_OK(DoThing());
/// \endcode
class Status {
 public:
  /// Constructs an OK status (no allocation).
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : state_(std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief An OK (success) status.
  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status UnexpectedEof(Args&&... args) {
    return Make(StatusCode::kUnexpectedEof, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// \brief The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnexpectedEof() const {
    return code() == StatusCode::kUnexpectedEof;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Aborts the process if this status is not OK. Use only in
  /// examples, benches and tests where failure is unrecoverable.
  void Abort(std::string_view context = {}) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::string message;
    (AppendPiece(&message, std::forward<Args>(args)), ...);
    return Status(code, std::move(message));
  }

  template <typename T>
  static void AppendPiece(std::string* out, T&& piece) {
    if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
      out->append(std::to_string(piece));
    } else {
      out->append(std::string_view(piece));
    }
  }

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // nullptr means OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace util
}  // namespace meetxml

/// \brief Propagates a non-OK Status to the caller.
#define MEETXML_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::meetxml::util::Status _st = (expr);           \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// \brief Aborts if `expr` is not OK; for mains and test setup.
#define MEETXML_CHECK_OK(expr)                      \
  do {                                              \
    ::meetxml::util::Status _st = (expr);           \
    if (!_st.ok()) _st.Abort(#expr);                \
  } while (0)

#endif  // MEETXML_UTIL_STATUS_H_
