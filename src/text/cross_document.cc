#include "text/cross_document.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace meetxml {
namespace text {

using util::Result;
using util::Status;

std::vector<std::string> ExtractProbeStrings(
    const model::StoredDocument& source, bat::Oid subtree,
    const CrossFindOptions& options) {
  // Collect every string value in the subtree: cdata text of descendant
  // cdata nodes plus attribute values of descendant elements.
  std::vector<std::string> collected;
  std::vector<bat::Oid> stack = {subtree};
  while (!stack.empty()) {
    bat::Oid node = stack.back();
    stack.pop_back();
    if (source.is_cdata(node)) {
      collected.push_back(std::string(source.CdataValue(node)));
    } else {
      for (const model::StringAssociation& attr :
           source.AttributesOf(node)) {
        collected.push_back(attr.value);
      }
    }
    for (bat::Oid kid : source.children(node)) stack.push_back(kid);
  }

  // Longest first (most distinctive), deduplicated, length-filtered.
  std::sort(collected.begin(), collected.end(),
            [](const std::string& a, const std::string& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  std::vector<std::string> probes;
  std::unordered_set<std::string> seen;
  for (std::string& value : collected) {
    std::string_view stripped = util::StripAsciiWhitespace(value);
    if (stripped.size() < options.min_probe_length) continue;
    std::string probe(stripped);
    if (!seen.insert(probe).second) continue;
    probes.push_back(std::move(probe));
    if (probes.size() >= options.max_probe_strings) break;
  }
  return probes;
}

Result<std::vector<core::GeneralMeet>> FindInOtherDocument(
    const model::StoredDocument& source, bat::Oid subtree,
    const model::StoredDocument& target,
    const FullTextSearch& target_search,
    const CrossFindOptions& options) {
  if (subtree >= source.node_count()) {
    return Status::NotFound("no node with OID ", subtree,
                            " in the source document");
  }
  std::vector<std::string> probes =
      ExtractProbeStrings(source, subtree, options);
  if (probes.empty()) {
    return Status::InvalidArgument(
        "subtree contains no probe-worthy strings (all shorter than ",
        options.min_probe_length, " characters)");
  }

  MEETXML_ASSIGN_OR_RETURN(std::vector<TermMatches> matches,
                           target_search.SearchAll(probes, options.mode));
  std::vector<size_t> source_terms;
  std::vector<core::AssocSet> inputs =
      FullTextSearch::ToMeetInput(matches, &source_terms);

  core::MeetOptions meet_options = options.meet_options;
  meet_options.excluded_paths.insert(target.path(target.root()));
  MEETXML_ASSIGN_OR_RETURN(std::vector<core::GeneralMeet> meets,
                           core::MeetGeneral(target, inputs, meet_options));

  // Keep meets covering enough distinct probes.
  std::vector<core::GeneralMeet> filtered;
  for (core::GeneralMeet& meet : meets) {
    std::unordered_set<size_t> covered;
    for (const core::MeetWitness& witness : meet.witnesses) {
      if (witness.source < source_terms.size()) {
        covered.insert(source_terms[witness.source]);
      }
    }
    if (covered.size() >= options.min_probes_covered) {
      filtered.push_back(std::move(meet));
    }
  }
  return filtered;
}

}  // namespace text
}  // namespace meetxml
