#include "data/dblp_gen.h"

#include <algorithm>
#include <cctype>

#include "util/rng.h"
#include "xml/serializer.h"

namespace meetxml {
namespace data {

using util::Result;
using util::Rng;
using util::Status;

namespace {

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> kNames = {
      "Alice",  "Bob",    "Carol", "Dave",   "Erika",  "Frank",
      "Grace",  "Heikki", "Ines",  "Jim",    "Kalle",  "Laura",
      "Martin", "Nadia",  "Otto",  "Priya",  "Quentin","Rosa",
      "Sam",    "Tomasz", "Uma",   "Viktor", "Wei",    "Xavier",
      "Yuki",   "Zoltan", "Albrecht", "Menzo", "Florian"};
  return kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string> kNames = {
      "Smith",    "Jones",   "Mueller",  "Garcia",   "Chen",
      "Kumar",    "Rossi",   "Tanaka",   "Novak",    "Silva",
      "Andersen", "Kowalski","Petrov",   "Dubois",   "Okafor",
      "Schmidt",  "Kersten", "Windhouwer","Boncz",   "Waas",
      "Byte",     "Bit",     "Hacker",   "Coder",    "Query"};
  return kNames;
}

const std::vector<std::string>& TitleWords() {
  static const std::vector<std::string> kWords = {
      "efficient",   "scalable",   "adaptive",    "distributed",
      "relational",  "semistructured", "indexing", "querying",
      "storage",     "retrieval",  "optimization","processing",
      "join",        "aggregation","compression", "caching",
      "transactions","recovery",   "replication", "partitioning",
      "documents",   "trees",      "graphs",      "streams",
      "schemas",     "views",      "wrappers",    "mediators",
      "declarative", "parallel",   "main-memory", "columnar"};
  return kWords;
}

}  // namespace

const std::vector<std::string>& DblpVenues() {
  static const std::vector<std::string> kVenues = {
      "ICDE", "SIGMOD", "VLDB", "EDBT", "PODS", "CIKM", "WebDB"};
  return kVenues;
}

namespace {

const std::vector<std::string>& Journals() {
  static const std::vector<std::string> kJournals = {
      "VLDB Journal", "TODS", "SIGMOD Record", "Information Systems"};
  return kJournals;
}

std::string MakeAuthorName(Rng* rng) {
  return rng->Pick(FirstNames()) + " " + rng->Pick(LastNames());
}

std::string MakeTitle(Rng* rng, double venue_in_title_prob) {
  int words = static_cast<int>(rng->NextInRange(3, 8));
  std::string title;
  for (int i = 0; i < words; ++i) {
    if (!title.empty()) title.push_back(' ');
    title.append(rng->Pick(TitleWords()));
  }
  // Capitalize the first letter to look like a real title.
  if (!title.empty() && title[0] >= 'a' && title[0] <= 'z') {
    title[0] = static_cast<char>(title[0] - 'a' + 'A');
  }
  if (rng->NextBool(venue_in_title_prob)) {
    title.append(" (an ");
    title.append(rng->Pick(DblpVenues()));
    title.append(" retrospective)");
  }
  return title;
}

std::string MakePages(Rng* rng) {
  // Occasionally a page range that collides with a year string — a
  // false-positive source the paper's intro mentions ("numbers ... as
  // year or page numbers").
  int first;
  if (rng->NextBool(0.01)) {
    first = static_cast<int>(rng->NextInRange(1980, 1999));
  } else {
    first = static_cast<int>(rng->NextInRange(1, 1200));
  }
  int last = first + static_cast<int>(rng->NextInRange(5, 20));
  return std::to_string(first) + "-" + std::to_string(last);
}

// DBLP-style keys carry two-digit years ("conf/icde/Smith99"), so a
// full-text search for "1999" does not hit every key attribute — real
// DBLP behaves the same way, and the case study's result cardinality
// depends on it.
std::string MakeKey(const std::string& venue, int year, int index) {
  std::string key = "conf/";
  for (char c : venue) {
    key.push_back(static_cast<char>(std::tolower(
        static_cast<unsigned char>(c))));
  }
  key.append("/");
  key.append(std::to_string(year % 100 + 100).substr(1));
  key.append("-");
  key.append(std::to_string(index));
  return key;
}

void AddOptionalFields(xml::Node* pub, Rng* rng, double prob) {
  if (rng->NextBool(prob)) {
    pub->AddElementWithText("ee",
                            "db/conf/x/" + rng->NextWord(4, 8) + ".html");
  }
  if (rng->NextBool(prob)) {
    pub->AddElementWithText(
        "url", "http://example.org/" + rng->NextWord(4, 10));
  }
  if (rng->NextBool(prob * 0.5)) {
    pub->AddElementWithText("note", "invited " + rng->NextWord(3, 7));
  }
  if (rng->NextBool(prob * 0.5)) {
    static const std::vector<std::string> kMonths = {
        "January", "March", "June", "September", "November"};
    pub->AddElementWithText("month", rng->Pick(kMonths));
  }
}

void AddInproceedings(xml::Node* parent, Rng* rng,
                      const DblpOptions& options, const std::string& venue,
                      int year, int index) {
  xml::Node* pub = parent->AddElement("inproceedings");
  pub->AddAttribute("key", MakeKey(venue, year, index));
  int authors = 1 + rng->NextGeometric(0.55, 4);
  for (int a = 0; a < authors; ++a) {
    pub->AddElementWithText("author", MakeAuthorName(rng));
  }
  pub->AddElementWithText("title",
                          MakeTitle(rng, options.venue_in_title_prob));
  pub->AddElementWithText("pages", MakePages(rng));
  pub->AddElementWithText("year", std::to_string(year));
  pub->AddElementWithText("booktitle", venue);
  AddOptionalFields(pub, rng, options.optional_field_prob);
}

void AddArticle(xml::Node* parent, Rng* rng, const DblpOptions& options,
                int year, int index) {
  xml::Node* pub = parent->AddElement("article");
  pub->AddAttribute(
      "key", "journals/j" + std::to_string(index % 7) + "/" +
                 std::to_string(year % 100 + 100).substr(1) + "-" +
                 std::to_string(index));
  int authors = 1 + rng->NextGeometric(0.5, 3);
  for (int a = 0; a < authors; ++a) {
    pub->AddElementWithText("author", MakeAuthorName(rng));
  }
  pub->AddElementWithText("title",
                          MakeTitle(rng, options.venue_in_title_prob));
  pub->AddElementWithText("journal", rng->Pick(Journals()));
  pub->AddElementWithText("volume",
                          std::to_string(rng->NextInRange(1, 30)));
  pub->AddElementWithText("pages", MakePages(rng));
  pub->AddElementWithText("year", std::to_string(year));
  AddOptionalFields(pub, rng, options.optional_field_prob);
}

void AddProceedingsEntry(xml::Node* parent, Rng* rng,
                         const std::string& venue, int year) {
  xml::Node* proc = parent->AddElement("proceedings");
  proc->AddAttribute("key", MakeKey(venue, year, 0));
  proc->AddElementWithText("editor", MakeAuthorName(rng));
  proc->AddElementWithText(
      "title", "Proceedings of " + venue + " " + std::to_string(year));
  proc->AddElementWithText("booktitle", venue);
  proc->AddElementWithText("year", std::to_string(year));
  proc->AddElementWithText("publisher", "ACM Press");
}

}  // namespace

Result<xml::Document> GenerateDblp(const DblpOptions& options) {
  if (options.start_year > options.end_year) {
    return Status::InvalidArgument("start_year must be <= end_year");
  }
  if (options.icde_papers_per_year < 0 ||
      options.other_papers_per_year < 0 ||
      options.journal_articles_per_year < 0) {
    return Status::InvalidArgument("paper counts must be non-negative");
  }

  Rng rng(options.seed);
  xml::Document doc;
  doc.root = xml::Node::MakeElement("dblp");
  xml::Node* root = doc.root.get();

  const auto& venues = DblpVenues();
  for (int year = options.start_year; year <= options.end_year; ++year) {
    for (size_t v = 0; v < venues.size(); ++v) {
      const std::string& venue = venues[v];
      bool is_icde = venue == "ICDE";
      if (is_icde && year == 1985) continue;  // ICDE skipped 1985
      int papers = is_icde ? options.icde_papers_per_year
                           : options.other_papers_per_year /
                                 std::max<int>(
                                     1, static_cast<int>(venues.size()) - 1);
      if (papers <= 0) continue;

      xml::Node* container = root;
      if (options.nested_proceedings) {
        container = root->AddElement("conference");
        container->AddAttribute("name", venue);
        container->AddAttribute("year", std::to_string(year));
      }
      AddProceedingsEntry(container, &rng, venue, year);
      for (int i = 0; i < papers; ++i) {
        AddInproceedings(container, &rng, options, venue, year, i);
      }
    }
    for (int i = 0; i < options.journal_articles_per_year; ++i) {
      AddArticle(root, &rng, options, year, i);
    }
  }
  return doc;
}

Result<std::string> GenerateDblpXml(const DblpOptions& options) {
  MEETXML_ASSIGN_OR_RETURN(xml::Document doc, GenerateDblp(options));
  xml::SerializeOptions serialize_options;
  serialize_options.indent = 1;
  return xml::Serialize(doc, serialize_options);
}

}  // namespace data
}  // namespace meetxml
