// Cross-bibliography lookup: the paper's §4 application.
//
// "We may want to know whether a certain bibliographical item that we
// found in one bibliography also lives in another bibliography;
// however, we have no idea how the relevant information is marked up."
//
// Loads the Figure 1 bibliography and a second catalogue with entirely
// different mark-up, picks Ben Bit's article in the first, and asks the
// meet machinery to locate the same item in the second.
//
// Run:  ./cross_bibliography

#include <cstdio>

#include "data/paper_example.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "text/cross_document.h"

using namespace meetxml;  // example code; the library itself never does this

namespace {

// A catalogue of the same publications under a different schema.
constexpr const char* kOtherCatalogueXml = R"(
<catalogue>
  <record year="1999">
    <title>How to Hack</title>
    <creators><name>Ben Bit</name></creators>
    <shelf>QA76.9</shelf>
  </record>
  <record year="1999">
    <title>Hacking and RSI</title>
    <creators><name>Bob Byte</name></creators>
    <shelf>QA76.8</shelf>
  </record>
  <record year="1998">
    <title>Column Stores for Fun and Profit</title>
    <creators><name>Carol Coder</name></creators>
    <shelf>QA76.5</shelf>
  </record>
</catalogue>)";

}  // namespace

int main() {
  auto source = model::ShredXmlText(data::PaperExampleXml());
  MEETXML_CHECK_OK(source.status());
  auto target = model::ShredXmlText(kOtherCatalogueXml);
  MEETXML_CHECK_OK(target.status());
  auto target_search = text::FullTextSearch::Build(*target);
  MEETXML_CHECK_OK(target_search.status());

  // The item we hold: Ben Bit's article (first <article> in DFS order).
  bat::Oid article = bat::kInvalidOid;
  for (bat::Oid oid = 0; oid < source->node_count(); ++oid) {
    if (!source->is_cdata(oid) && source->tag(oid) == "article") {
      article = oid;
      break;
    }
  }
  auto article_xml = model::ReassembleToXml(*source, article);
  MEETXML_CHECK_OK(article_xml.status());
  std::printf("Item in bibliography A:\n%s\n\n", article_xml->c_str());

  text::CrossFindOptions options;
  options.min_probes_covered = 1;
  auto probes = text::ExtractProbeStrings(*source, article, options);
  std::printf("Probe strings:");
  for (const std::string& probe : probes) {
    std::printf("  '%s'", probe.c_str());
  }
  std::printf("\n\n");

  auto found = text::FindInOtherDocument(*source, article, *target,
                                         *target_search, options);
  MEETXML_CHECK_OK(found.status());
  if (found->empty()) {
    std::printf("Not found in catalogue B.\n");
    return 0;
  }
  std::printf("Nearest concepts in catalogue B (different mark-up):\n");
  for (const core::GeneralMeet& meet : *found) {
    // Climb to the record for display.
    bat::Oid node = meet.meet;
    while (node != target->root() && target->tag(node) != "record") {
      node = target->parent(node);
    }
    auto found_xml = model::ReassembleToXml(*target, node);
    MEETXML_CHECK_OK(found_xml.status());
    std::printf("-- %s (distance %d)\n%s\n\n",
                model::DescribeNode(*target, meet.meet).c_str(),
                meet.witness_distance, found_xml->c_str());
    break;  // top answer is enough for the demo
  }
  return 0;
}
