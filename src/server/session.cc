#include "server/session.h"

namespace meetxml {
namespace server {

using util::Result;
using util::Status;

Result<uint64_t> SessionTable::Open(uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::Unavailable("session table full (",
                               options_.max_sessions, " sessions)");
  }
  uint64_t id = next_id_++;
  sessions_.emplace(id, Session{now_ms});
  return id;
}

Status SessionTable::Close(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session ", id);
  }
  return Status::OK();
}

Status SessionTable::Touch(uint64_t id, uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session ", id);
  }
  it->second.last_active_ms = now_ms;
  return Status::OK();
}

std::vector<uint64_t> SessionTable::EvictIdle(uint64_t now_ms) {
  std::vector<uint64_t> evicted;
  if (options_.idle_timeout_ms == 0) return evicted;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now_ms - it->second.last_active_ms >= options_.idle_timeout_ms) {
      evicted.push_back(it->first);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  total_evicted_ += evicted.size();
  return evicted;
}

size_t SessionTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

bool SessionTable::Contains(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.find(id) != sessions_.end();
}

uint64_t SessionTable::total_evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_evicted_;
}

}  // namespace server
}  // namespace meetxml
