// Quickstart: the paper's running example, end to end.
//
// Loads the Figure 1 bibliography, runs the introduction's query — first
// with the regular-path-expression baseline (answer-set explosion), then
// with the meet operator (exactly the article the user wanted) — and
// shows the reassembled XML of the nearest concept.
//
// Run:  ./quickstart

#include <cstdio>

#include "data/paper_example.h"
#include "model/reassembly.h"
#include "model/shredder.h"
#include "query/executor.h"

using meetxml::data::PaperExampleXml;
using meetxml::model::ReassembleToXml;
using meetxml::model::ShredXmlText;
using meetxml::model::StoredDocument;
using meetxml::query::Executor;
using meetxml::query::QueryResult;

int main() {
  // 1. Parse + shred (the Monet transform) in one step.
  auto doc_result = ShredXmlText(PaperExampleXml());
  MEETXML_CHECK_OK(doc_result.status());
  const StoredDocument& doc = *doc_result;
  std::printf("Loaded the paper's Figure 1 document: %zu nodes, %zu "
              "schema paths, %zu string associations.\n\n",
              doc.node_count(), doc.paths().size(), doc.string_count());

  auto executor_result = Executor::Build(doc);
  MEETXML_CHECK_OK(executor_result.status());
  const Executor& executor = *executor_result;

  // 2. The baseline: "what did 'Bit' publish in '1999'?" with regular
  // path expressions. Every combination of matches implies all its
  // common ancestors — the answer drowns in implied rows.
  const char* kBaseline =
      "SELECT ANCESTORS(o1, o2) "
      "FROM bibliography//cdata o1, bibliography//cdata o2 "
      "WHERE o1 CONTAINS 'Bit' AND o2 CONTAINS '1999'";
  auto baseline = executor.ExecuteText(kBaseline);
  MEETXML_CHECK_OK(baseline.status());
  std::printf("Baseline (regular path expressions):\n%s\n%s  -> %llu "
              "answer rows, mostly implied ancestors.\n\n",
              kBaseline, baseline->ToText().c_str(),
              static_cast<unsigned long long>(
                  baseline->total_ancestor_rows));

  // 3. The meet operator: the same question, one precise answer.
  const char* kMeetQuery =
      "SELECT MEET(o1, o2) "
      "FROM bibliography//cdata o1, bibliography//cdata o2 "
      "WHERE o1 CONTAINS 'Bit' AND o2 CONTAINS '1999'";
  auto meet = executor.ExecuteText(kMeetQuery);
  MEETXML_CHECK_OK(meet.status());
  std::printf("Nearest concept (meet operator):\n%s\n%s\n", kMeetQuery,
              meet->ToText().c_str());

  // 4. Reassemble the winning node so the user can read it.
  if (!meet->meets.empty()) {
    auto xml_text = ReassembleToXml(doc, meet->meets.front().meet);
    MEETXML_CHECK_OK(xml_text.status());
    std::printf("Reassembled nearest concept:\n%s\n", xml_text->c_str());
  }
  return 0;
}
