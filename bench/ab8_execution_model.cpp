// AB8 — ablation: execution model of the general meet.
//
// The paper credits the relational, set-at-a-time execution for the
// meet's efficiency inside MonetDB. Our engine offers both that
// execution (per-path BAT joins, MeetGeneralRelational) and a dense
// positional-array roll-up (MeetGeneral). This harness compares them
// across input cardinalities; both are linear, the arrays win by a
// constant factor because a join materializes (parent, item) rows that
// the array walk dereferences in place. Correctness equivalence is
// pinned by tests/meet_relational_test.

#include <cstdio>

#include "core/meet_general.h"
#include "core/meet_general_relational.h"
#include "core/restrictions.h"
#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "text/search.h"
#include "util/timer.h"

using namespace meetxml;

int main() {
  data::DblpOptions options;
  options.icde_papers_per_year = 150;
  options.other_papers_per_year = 300;
  options.journal_articles_per_year = 120;
  auto generated = data::GenerateDblp(options);
  MEETXML_CHECK_OK(generated.status());
  auto doc_result = model::Shred(*generated);
  MEETXML_CHECK_OK(doc_result.status());
  const model::StoredDocument& doc = *doc_result;

  auto search_result = text::FullTextSearch::Build(doc);
  MEETXML_CHECK_OK(search_result.status());
  auto years = search_result->Search("19", text::MatchMode::kContains);
  auto icde = search_result->Search("ICDE", text::MatchMode::kContains);
  MEETXML_CHECK_OK(years.status());
  MEETXML_CHECK_OK(icde.status());
  auto all_inputs = text::FullTextSearch::ToMeetInput({*icde, *years});
  size_t total = 0;
  for (const auto& set : all_inputs) total += set.size();

  std::printf("# AB8: general meet execution model — dense arrays vs "
              "BAT joins (document: %zu nodes)\n",
              doc.node_count());
  std::printf("# %10s %10s %12s %12s %8s %10s\n", "input_n", "meets",
              "arrays_ms", "batjoin_ms", "joins", "join_rows");

  core::MeetOptions meet_options = core::ExcludeRootOptions(doc);
  for (double fraction : {0.02, 0.08, 0.25, 0.6, 1.0}) {
    std::vector<core::AssocSet> inputs;
    size_t n = 0;
    for (const auto& set : all_inputs) {
      size_t take = std::max<size_t>(
          1, static_cast<size_t>(set.size() * fraction));
      take = std::min(take, set.size());
      inputs.push_back(core::AssocSet{
          set.path, {set.nodes.begin(), set.nodes.begin() + take}});
      n += take;
    }

    util::Timer timer;
    auto array_result = core::MeetGeneral(doc, inputs, meet_options);
    MEETXML_CHECK_OK(array_result.status());
    double array_ms = timer.ElapsedMillis();

    core::RelationalMeetStats stats;
    timer.Reset();
    auto relational_result =
        core::MeetGeneralRelational(doc, inputs, meet_options, &stats);
    MEETXML_CHECK_OK(relational_result.status());
    double relational_ms = timer.ElapsedMillis();

    if (relational_result->size() != array_result->size()) {
      std::printf("# ERROR: result mismatch (%zu vs %zu)\n",
                  array_result->size(), relational_result->size());
      return 1;
    }
    std::printf("  %10zu %10zu %12.2f %12.2f %8zu %10zu\n", n,
                array_result->size(), array_ms, relational_ms,
                stats.joins, stats.join_rows);
  }
  std::printf("# expected shape: both linear in input size; arrays win "
              "by a constant factor (no join materialization)\n");
  return 0;
}
