#include "store/catalog.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "model/storage_io.h"
#include "text/index_io.h"
#include "util/byte_io.h"
#include "util/file_io.h"
#include "util/mmap_file.h"
#include "util/strings.h"
#include "util/threads.h"
#include "util/timer.h"

namespace meetxml {
namespace store {

using model::ImageSection;
using model::SectionView;
using model::StoredDocument;
using util::ByteReader;
using util::ByteWriter;
using util::Result;
using util::Status;

namespace {

constexpr uint8_t kCatalogCodecVersion = 1;

Status ValidateName(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("document names cannot be empty");
  }
  if (name.find_first_of("*?") != std::string_view::npos) {
    return Status::InvalidArgument(
        "document name '", name,
        "' contains glob metacharacters (reserved for scopes)");
  }
  return Status::OK();
}

}  // namespace

NamedDocument* Catalog::FindMutable(std::string_view name) {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

const NamedDocument* Catalog::Find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

const NamedDocument* Catalog::FindById(DocId id) const {
  for (const auto& entry : entries_) {
    if (entry->id == id) return entry.get();
  }
  return nullptr;
}

Result<const model::StoredDocument*> Catalog::Get(
    std::string_view name) const {
  const NamedDocument* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("no document named '", name,
                            "' in the catalog");
  }
  return &entry->doc;
}

Result<DocId> Catalog::Add(std::string name, StoredDocument doc) {
  MEETXML_RETURN_NOT_OK(ValidateName(name));
  if (!doc.finalized()) {
    return Status::InvalidArgument(
        "only finalized documents can join the catalog");
  }
  if (Find(name) != nullptr) {
    return Status::InvalidArgument("document '", name,
                                 "' is already in the catalog");
  }
  auto entry = std::make_unique<NamedDocument>();
  entry->id = next_id_++;
  entry->name = std::move(name);
  entry->doc = std::move(doc);
  DocId id = entry->id;
  entries_.push_back(std::move(entry));
  return id;
}

Result<DocId> Catalog::Add(std::string name, StoredDocument doc,
                           text::InvertedIndex index) {
  MEETXML_RETURN_NOT_OK(text::ValidateIndexAgainst(doc, index));
  MEETXML_ASSIGN_OR_RETURN(DocId id, Add(std::move(name), std::move(doc)));
  entries_.back()->index = std::move(index);
  return id;
}

Status Catalog::Remove(std::string_view name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if ((*it)->name == name) {
      entries_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no document named '", name,
                          "' in the catalog");
}

Status Catalog::Rename(std::string_view from, std::string to) {
  MEETXML_RETURN_NOT_OK(ValidateName(to));
  NamedDocument* entry = FindMutable(from);
  if (entry == nullptr) {
    return Status::NotFound("no document named '", from,
                            "' in the catalog");
  }
  if (to != from && Find(to) != nullptr) {
    return Status::InvalidArgument("document '", to,
                                 "' is already in the catalog");
  }
  entry->name = std::move(to);
  return Status::OK();
}

std::vector<const NamedDocument*> Catalog::entries() const {
  std::vector<const NamedDocument*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  return out;
}

std::vector<std::string> Catalog::MatchNames(std::string_view glob) const {
  std::vector<std::string> out;
  for (const auto& entry : entries_) {
    if (util::GlobMatch(glob, entry->name)) out.push_back(entry->name);
  }
  return out;
}

Result<const query::Executor*> Catalog::ExecutorFor(
    std::string_view name) const {
  const NamedDocument* entry = Find(name);
  if (entry == nullptr) {
    return Status::NotFound("no document named '", name,
                            "' in the catalog");
  }
  // Concurrent readers race to the first build; the per-entry mutex
  // elects one builder and everyone else observes the finished
  // executor. After the build the critical section is two pointer
  // reads, so steady-state contention is negligible.
  std::lock_guard<std::mutex> lock(*entry->lazy_mu);
  if (entry->executor == nullptr) {
    // Build first (the fallible step), hand the index over only on
    // success — a failed build must not hollow the persisted index.
    MEETXML_ASSIGN_OR_RETURN(query::Executor built,
                             query::Executor::Build(entry->doc));
    entry->executor = std::make_unique<query::Executor>(std::move(built));
    if (entry->index.has_value()) {
      entry->executor->InstallTextSearch(text::FullTextSearch::WithIndex(
          entry->doc, std::move(*entry->index)));
      // The index now lives inside the executor (text_index() hands it
      // back for Save); holding a second copy would double memory.
      entry->index.reset();
    }
  }
  return entry->executor.get();
}

Status Catalog::Warm(bool build_text_indexes, unsigned threads) const {
  std::vector<const NamedDocument*> all = entries();
  std::vector<Status> outcomes(all.size());
  util::ParallelFor(all.size(), threads, [&](size_t i) {
    Result<const query::Executor*> executor = ExecutorFor(all[i]->name);
    if (!executor.ok()) {
      outcomes[i] = executor.status();
      return;
    }
    if (build_text_indexes) {
      outcomes[i] = (*executor)->TextSearch().status();
    }
  });
  for (const Status& status : outcomes) {
    MEETXML_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

Status Catalog::EnsureIndex(std::string_view name) {
  NamedDocument* entry = FindMutable(name);
  if (entry == nullptr) {
    return Status::NotFound("no document named '", name,
                            "' in the catalog");
  }
  if (entry->index.has_value()) return Status::OK();
  if (entry->executor != nullptr) {
    // Force the executor's own lazy build: the index lands where its
    // text predicates will use it, and text_index() exposes it to
    // Save — a sidecar copy would be built twice and used once.
    return entry->executor->TextSearch().status();
  }
  MEETXML_ASSIGN_OR_RETURN(text::InvertedIndex index,
                           text::InvertedIndex::Build(entry->doc));
  entry->index = std::move(index);
  return Status::OK();
}

Result<std::string> Catalog::SaveToBytes(
    model::DocumentPayloadFormat payload_format) const {
  // Section order: CTLG first, then per entry its document section and
  // (when an index exists anywhere — on the entry or inside its
  // executor) TIDX.
  uint32_t document_section_id =
      model::DocumentSectionIdFor(payload_format);
  std::vector<ImageSection> sections;
  sections.emplace_back();  // CTLG placeholder, payload filled below

  ByteWriter directory;
  directory.U8(kCatalogCodecVersion);
  directory.Varint(next_id_);
  directory.Varint(entries_.size());
  for (const auto& entry : entries_) {
    MEETXML_ASSIGN_OR_RETURN(
        std::string doc_payload,
        model::SerializeDocumentSection(entry->doc, payload_format));
    directory.Varint(entry->id);
    directory.StrVarint(entry->name);
    directory.Varint(sections.size());
    sections.push_back(
        ImageSection{document_section_id, std::move(doc_payload)});
    const text::InvertedIndex* index =
        entry->index.has_value()
            ? &*entry->index
            : (entry->executor != nullptr ? entry->executor->text_index()
                                          : nullptr);
    if (index != nullptr) {
      directory.Varint(sections.size() + 1);  // 0 means "no index"
      sections.push_back(ImageSection{model::kTextIndexSectionId,
                                      text::SerializeIndex(*index)});
    } else {
      directory.Varint(0);
    }
  }
  sections.front() =
      ImageSection{model::kCatalogSectionId, directory.Take()};

  // Minor stamp: the bump exists only to stop readers from opening
  // images they cannot decode, so columnar images need minor 5 (DOC2)
  // or 4 (DOC1) only when such a section is actually aboard (an empty
  // catalog carries none). Row-oriented images: one document degrades
  // gracefully under legacy minor-2 readers (the CTLG section is
  // skipped as unknown); several DOC0 sections need the minor-3
  // contract.
  uint32_t minor = entries_.size() > 1 ? 3 : 2;
  if (!entries_.empty()) {
    if (payload_format == model::DocumentPayloadFormat::kColumnar) {
      minor = 5;
    } else if (payload_format ==
               model::DocumentPayloadFormat::kColumnarUnaligned) {
      minor = 4;
    }
  }
  return model::SaveSectionsToBytes(sections, minor);
}

Result<Catalog> Catalog::LoadFromBytes(std::string_view bytes,
                                       const CatalogLoadOptions& options) {
  util::Timer total_timer;
  if (options.stats != nullptr) *options.stats = CatalogLoadStats{};
  MEETXML_ASSIGN_OR_RETURN(model::SectionImage image,
                           model::LoadSectionsFromBytes(bytes));

  const SectionView* catalog_section = nullptr;
  for (const SectionView& section : image.sections) {
    if (section.id != model::kCatalogSectionId) continue;
    if (catalog_section != nullptr) {
      return Status::InvalidArgument(
          "corrupt image: duplicate catalog section");
    }
    catalog_section = &section;
  }

  model::LoadOptions doc_options;
  doc_options.mode = options.mode;
  doc_options.backing = options.backing;

  Catalog catalog;
  if (catalog_section == nullptr) {
    // Legacy single-document image (MXM1, or MXM2 written by the
    // single-document API): one entry, named after the root tag.
    util::Timer decode_timer;
    model::LoadStats doc_stats;
    model::LoadOptions legacy_options = doc_options;
    legacy_options.stats = &doc_stats;
    MEETXML_ASSIGN_OR_RETURN(
        model::LoadedImage legacy,
        model::LoadImageFromBytes(bytes, legacy_options));
    std::optional<text::InvertedIndex> index;
    for (const ImageSection& section : legacy.extra_sections) {
      if (section.id != model::kTextIndexSectionId) continue;
      MEETXML_ASSIGN_OR_RETURN(text::InvertedIndex decoded,
                               text::DeserializeIndex(section.bytes));
      MEETXML_RETURN_NOT_OK(
          text::ValidateIndexAgainst(legacy.doc, decoded));
      index = std::move(decoded);
      break;
    }
    double decode_ms = decode_timer.ElapsedMillis();
    bool columnar = false;
    for (const SectionView& section : image.sections) {
      if (model::IsDocumentSectionId(section.id) &&
          section.id != model::kDocumentSectionId) {
        columnar = true;
      }
    }
    std::string name = legacy.doc.tag(legacy.doc.root());
    if (!ValidateName(name).ok()) name = "doc";
    if (options.stats != nullptr) {
      options.stats->documents.push_back(CatalogLoadStats::DocumentStats{
          name, decode_ms, columnar, index.has_value(),
          doc_stats.mode_used, doc_stats.bytes_copied,
          doc_stats.bytes_viewed});
    }
    if (index.has_value()) {
      MEETXML_RETURN_NOT_OK(catalog
                                .Add(std::move(name),
                                     std::move(legacy.doc),
                                     std::move(*index))
                                .status());
    } else {
      MEETXML_RETURN_NOT_OK(
          catalog.Add(std::move(name), std::move(legacy.doc)).status());
    }
    if (options.stats != nullptr) {
      options.stats->total_ms = total_timer.ElapsedMillis();
    }
    return catalog;
  }

  ByteReader reader(catalog_section->bytes);
  MEETXML_ASSIGN_OR_RETURN(uint8_t codec, reader.U8());
  if (codec != kCatalogCodecVersion) {
    return Status::InvalidArgument("unsupported catalog codec ", codec);
  }
  MEETXML_ASSIGN_OR_RETURN(uint64_t next_id, reader.Varint());
  // next_id must stay below the invalid sentinel so every future Add
  // hands out a usable id; anything larger is corruption (and would
  // silently truncate in the u32 member below).
  if (next_id >= kInvalidDocId) {
    return Status::InvalidArgument("corrupt catalog: next_doc_id ",
                                   next_id);
  }
  MEETXML_ASSIGN_OR_RETURN(uint64_t entry_count, reader.Varint());
  if (entry_count > image.sections.size()) {
    // Every entry owns at least a document section; more entries than
    // sections is structurally impossible.
    return Status::InvalidArgument("corrupt catalog: entry count ",
                                   entry_count);
  }

  std::vector<bool> claimed(image.sections.size(), false);
  claimed[static_cast<size_t>(catalog_section - image.sections.data())] =
      true;
  auto claim = [&](uint64_t at, bool want_document) -> Status {
    if (at >= image.sections.size()) {
      return Status::InvalidArgument(
          "corrupt catalog: section index out of range");
    }
    bool type_ok = want_document
                       ? model::IsDocumentSectionId(image.sections[at].id)
                       : image.sections[at].id == model::kTextIndexSectionId;
    if (!type_ok) {
      return Status::InvalidArgument(
          "corrupt catalog: section type mismatch");
    }
    if (claimed[at]) {
      return Status::InvalidArgument(
          "corrupt catalog: section referenced twice");
    }
    claimed[at] = true;
    return Status::OK();
  };

  // Phase 1 (serial): parse and validate the directory. Structural
  // errors surface before any document decode starts.
  struct DirectoryEntry {
    DocId id = kInvalidDocId;
    std::string name;
    size_t doc_at = 0;
    // Persisted encoding kept verbatim: 0 = no index, otherwise the
    // section position + 1. (A plain position with 0-as-none would
    // misread images whose TIDX legitimately sits at position 0.)
    size_t index_at_plus_one = 0;
  };
  std::vector<DirectoryEntry> directory;
  directory.reserve(static_cast<size_t>(entry_count));
  for (uint64_t i = 0; i < entry_count; ++i) {
    DirectoryEntry entry;
    MEETXML_ASSIGN_OR_RETURN(uint64_t id, reader.Varint());
    MEETXML_ASSIGN_OR_RETURN(entry.name, reader.StrVarint());
    MEETXML_ASSIGN_OR_RETURN(uint64_t doc_at, reader.Varint());
    MEETXML_ASSIGN_OR_RETURN(uint64_t index_at_plus_one, reader.Varint());
    if (id >= next_id) {
      return Status::InvalidArgument(
          "corrupt catalog: document id beyond next_doc_id");
    }
    entry.id = static_cast<DocId>(id);
    for (const DirectoryEntry& earlier : directory) {
      if (earlier.id == entry.id) {
        return Status::InvalidArgument(
            "corrupt catalog: duplicate document id");
      }
    }
    MEETXML_RETURN_NOT_OK(claim(doc_at, /*want_document=*/true));
    entry.doc_at = static_cast<size_t>(doc_at);
    if (index_at_plus_one != 0) {
      uint64_t index_at = index_at_plus_one - 1;
      MEETXML_RETURN_NOT_OK(claim(index_at, /*want_document=*/false));
      entry.index_at_plus_one = static_cast<size_t>(index_at_plus_one);
    }
    directory.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in catalog section");
  }
  // Document and index sections a CTLG image does not reference are
  // writer bugs or tampering, not forward compatibility (new ids are
  // how the format grows); reject them.
  for (size_t at = 0; at < image.sections.size(); ++at) {
    uint32_t id = image.sections[at].id;
    if (!claimed[at] && (model::IsDocumentSectionId(id) ||
                         id == model::kTextIndexSectionId)) {
      return Status::InvalidArgument(
          "corrupt catalog: unreferenced document or index section");
    }
  }

  // Phase 2 (parallel): decode every entry's sections on a thread
  // pool — the sections are independently checksummed byte ranges, so
  // workers share nothing but the input image. Same pool pattern as
  // model/bulk_load; errors are collected per entry and the first one
  // in directory order wins, matching what a serial decode would have
  // reported.
  struct DecodedEntry {
    Status status = Status::OK();
    StoredDocument doc;
    std::optional<text::InvertedIndex> index;
    double decode_ms = 0;
    model::LoadStats load_stats;
  };
  std::vector<DecodedEntry> decoded(directory.size());
  auto decode_one = [&](size_t i) {
    DecodedEntry& out = decoded[i];
    util::Timer decode_timer;
    const SectionView& doc_section = image.sections[directory[i].doc_at];
    model::LoadOptions entry_options = doc_options;
    entry_options.stats = &out.load_stats;
    Result<StoredDocument> doc = model::ParseAnyDocumentSection(
        doc_section.id, doc_section.bytes, entry_options);
    if (!doc.ok()) {
      out.status = doc.status();
      return;
    }
    out.doc = std::move(*doc);
    if (directory[i].index_at_plus_one != 0) {
      Result<text::InvertedIndex> index = text::DeserializeIndex(
          image.sections[directory[i].index_at_plus_one - 1].bytes);
      if (!index.ok()) {
        out.status = index.status();
        return;
      }
      Status valid = text::ValidateIndexAgainst(out.doc, *index);
      if (!valid.ok()) {
        out.status = valid;
        return;
      }
      out.index = std::move(*index);
    }
    out.decode_ms = decode_timer.ElapsedMillis();
  };
  unsigned workers =
      util::ParallelFor(directory.size(), options.threads, decode_one);
  for (const DecodedEntry& entry : decoded) {
    MEETXML_RETURN_NOT_OK(entry.status);
  }

  // Phase 3 (serial): assemble the catalog. Add() re-validates the
  // name and enforces uniqueness; it assigns sequential ids, so the
  // persisted id is restored afterwards.
  for (size_t i = 0; i < directory.size(); ++i) {
    if (options.stats != nullptr) {
      options.stats->documents.push_back(CatalogLoadStats::DocumentStats{
          directory[i].name, decoded[i].decode_ms,
          image.sections[directory[i].doc_at].id !=
              model::kDocumentSectionId,
          decoded[i].index.has_value(), decoded[i].load_stats.mode_used,
          decoded[i].load_stats.bytes_copied,
          decoded[i].load_stats.bytes_viewed});
    }
    Result<DocId> added =
        decoded[i].index.has_value()
            ? catalog.Add(std::move(directory[i].name),
                          std::move(decoded[i].doc),
                          std::move(*decoded[i].index))
            : catalog.Add(std::move(directory[i].name),
                          std::move(decoded[i].doc));
    MEETXML_RETURN_NOT_OK(added.status());
    catalog.entries_.back()->id = directory[i].id;
  }
  catalog.next_id_ = static_cast<DocId>(next_id);
  if (options.stats != nullptr) {
    options.stats->threads_used = std::max(1u, workers);
    options.stats->total_ms = total_timer.ElapsedMillis();
  }
  return catalog;
}

Status Catalog::SaveToFile(const std::string& path) const {
  MEETXML_ASSIGN_OR_RETURN(std::string bytes, SaveToBytes());
  // Atomic (temp + rename): a view-backed catalog loaded from this
  // very path keeps borrowing from the old inode's mapping while the
  // new image takes over the directory entry.
  return util::WriteFileAtomic(path, bytes);
}

Result<Catalog> Catalog::LoadFromFile(const std::string& path,
                                      const CatalogLoadOptions& options) {
  if (options.mode == model::LoadMode::kView) {
    // Zero-copy open: every view-backed document pins the shared
    // mapping, so the catalog keeps it alive exactly as long as any
    // of its documents borrows from it.
    MEETXML_ASSIGN_OR_RETURN(
        std::shared_ptr<const util::MmapFile> file,
        util::MmapFile::OpenShared(path,
                                   util::MmapFile::Advice::kWillNeed));
    CatalogLoadOptions pinned = options;
    pinned.backing = file;
    return LoadFromBytes(file->bytes(), pinned);
  }
  // Decode out of a file mapping; the catalog owns everything it
  // keeps, so the mapping ends with this scope.
  MEETXML_ASSIGN_OR_RETURN(
      util::MmapFile file,
      util::MmapFile::Open(path, util::MmapFile::Advice::kSequential));
  return LoadFromBytes(file.bytes(), options);
}

}  // namespace store
}  // namespace meetxml
