#include "model/path_summary.h"

namespace meetxml {
namespace model {

PathId PathSummary::Intern(PathId parent, StepKind kind,
                           std::string_view label) {
  Key key{parent, kind, std::string(label)};
  auto it = lookup_.find(key);
  if (it != lookup_.end()) return it->second;

  PathId id = static_cast<PathId>(entries_.size());
  Entry entry;
  entry.parent = parent;
  entry.depth = parent == kInvalidPathId ? 1 : entries_[parent].depth + 1;
  entry.kind = kind;
  entry.label = std::string(label);
  entries_.push_back(std::move(entry));
  if (parent == kInvalidPathId) {
    roots_.push_back(id);
  } else {
    entries_[parent].children.push_back(id);
  }
  lookup_.emplace(std::move(key), id);
  return id;
}

PathId PathSummary::Find(PathId parent, StepKind kind,
                         std::string_view label) const {
  Key key{parent, kind, std::string(label)};
  auto it = lookup_.find(key);
  return it == lookup_.end() ? kInvalidPathId : it->second;
}

bool PathSummary::IsPrefixOf(PathId prefix, PathId path) const {
  // Walk up from the deeper path; depths make the walk minimal.
  if (prefix == kInvalidPathId || path == kInvalidPathId) return false;
  uint32_t target_depth = depth(prefix);
  PathId cur = path;
  while (depth(cur) > target_depth) cur = parent(cur);
  return cur == prefix;
}

PathId PathSummary::CommonPrefix(PathId a, PathId b) const {
  while (depth(a) > depth(b)) a = parent(a);
  while (depth(b) > depth(a)) b = parent(b);
  while (a != b) {
    a = parent(a);
    b = parent(b);
    if (a == kInvalidPathId || b == kInvalidPathId) return kInvalidPathId;
  }
  return a;
}

std::string PathSummary::ToString(PathId id) const {
  std::vector<PathId> chain;
  for (PathId cur = id; cur != kInvalidPathId; cur = parent(cur)) {
    chain.push_back(cur);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out.push_back('/');
    if (kind(*it) == StepKind::kAttribute) out.push_back('@');
    out.append(label(*it));
  }
  return out;
}

std::vector<PathId> PathSummary::FindByLabel(StepKind step_kind,
                                             std::string_view label) const {
  std::vector<PathId> out;
  for (PathId id = 0; id < entries_.size(); ++id) {
    if (entries_[id].kind == step_kind && entries_[id].label == label) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<PathId> PathSummary::AllPaths() const {
  std::vector<PathId> out(entries_.size());
  for (PathId id = 0; id < entries_.size(); ++id) out[id] = id;
  return out;
}

}  // namespace model
}  // namespace meetxml
