#!/usr/bin/env python3
"""Bench trend check: fail CI when a benchmark regresses hard.

Compares a freshly produced Google Benchmark JSON file against the
archived baseline from the previous run and exits non-zero when any
benchmark's wall time grew beyond the threshold (default 2x) — the
tripwire for the BENCH_*.json trajectory the bench-smoke job archives.

Registered trend files (one invocation each in the CI bench-smoke
job): BENCH_ab9_bulk_load.json (parallel load + persisted indexes),
BENCH_ab10_catalog.json (multi-document fan-out),
BENCH_ab11_cold_start.json (image -> hot executor; guards the
columnar decode, the zero-copy view-mode open — the
BM_DocumentDecodeDoc2View / BM_ExecutorFromImageDoc2View /
BM_CatalogOpenView series — and the parallel catalog-open wins) and
BENCH_ab12_service.json (the meetxmld closed-loop: throughput and
p50/p99 latency vs. client count over the shared catalog; the
BM_ServiceClosedLoop series is load-bearing — losing it would mean
the service dispatch path silently left the trend) and
BENCH_ab13_open_scaling.json (O(directory) catalog open and the
incremental in-place save; the BM_CatalogOpenLazy and
BM_CatalogSaveInPlace series are load-bearing) and
BENCH_ab14_obs_overhead.json (instrumented vs. uninstrumented
service dispatch; the BM_ObsOverhead series is load-bearing — the
observability layer's <2% overhead claim rides on this trend) and
BENCH_ab15_topk.json (streaming top-k vs. the legacy materialized
merge, latency vs. k and vs. document count; the BM_TopKStreaming
series is load-bearing — it carries the >=3x top-k win).

Usage:
    check_bench_trend.py CURRENT.json BASELINE.json [--threshold 2.0]
        [--expect SUBSTRING ...] [--counters-out FILE]

Skips cleanly (exit 0, with a note) when the baseline file does not
exist or cannot be parsed — first runs and cache evictions must not
fail the job. Benchmarks present on only one side are reported but
never fatal: adding or renaming a benchmark is not a regression.
--expect makes a series load-bearing: the check fails when no current
benchmark name contains the given substring, so a guarded series
(e.g. the ab11 view-mode cold-start numbers) cannot silently vanish
from the trend — that guard holds even on runs with no baseline.
--counters-out archives every benchmark's user counters (the ab12
latency percentiles, the ab14 observe flag and traced-query counts —
values that come out of the obs histogram summaries, not wall time)
to a compact JSON file the CI job uploads next to the raw GBench
output, so the latency trajectory is greppable without re-parsing.
"""

import argparse
import json
import sys

# Everything is compared in nanoseconds.
_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


# Standard GBench per-run fields; everything else in a benchmark row is
# a user counter (ab12's p50_us/p99_us, ab14's observe/traced_queries).
_BUILTIN_FIELDS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads",
    "iterations", "real_time", "cpu_time", "time_unit",
    "items_per_second", "bytes_per_second", "label",
    "error_occurred", "error_message",
}


def load_times(path, counters=None):
    """Returns {benchmark name: real_time in ns} for a GBench JSON file.

    With `counters` (a dict), also collects each benchmark's user
    counters plus items_per_second into counters[name].
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    times = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of --benchmark_repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        unit = bench.get("time_unit", "ns")
        if name is None or real_time is None or unit not in _UNIT_NS:
            continue
        times[name] = float(real_time) * _UNIT_NS[unit]
        if counters is not None:
            extra = {
                key: value
                for key, value in bench.items()
                if key not in _BUILTIN_FIELDS
                and isinstance(value, (int, float))
            }
            if "items_per_second" in bench:
                extra["items_per_second"] = bench["items_per_second"]
            if extra:
                counters[name] = extra
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced GBench JSON")
    parser.add_argument("baseline", help="previous run's GBench JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current wall time exceeds threshold * baseline",
    )
    parser.add_argument(
        "--expect",
        action="append",
        default=[],
        metavar="SUBSTRING",
        help="fail when no current benchmark name contains SUBSTRING "
        "(guards a load-bearing series against silent removal)",
    )
    parser.add_argument(
        "--counters-out",
        metavar="FILE",
        help="archive each benchmark's user counters (latency "
        "percentiles, histogram-derived values) as JSON to FILE",
    )
    args = parser.parse_args()

    counters = {} if args.counters_out else None
    current = load_times(args.current, counters)
    if args.counters_out:
        with open(args.counters_out, "w", encoding="utf-8") as fh:
            json.dump(counters, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"archived counters for {len(counters)} benchmark(s) "
            f"to {args.counters_out}"
        )
    missing = [
        expected
        for expected in args.expect
        if not any(expected in name for name in current)
    ]
    if missing:
        for expected in missing:
            print(f"  expected series missing from current run: {expected}")
        return 1

    try:
        baseline = load_times(args.baseline)
    except (OSError, ValueError) as error:
        print(f"trend check skipped: no usable baseline ({error})")
        return 0
    if not baseline or not current:
        print("trend check skipped: empty benchmark list")
        return 0

    regressions = []
    for name in sorted(current):
        if name not in baseline:
            print(f"  new benchmark (no baseline): {name}")
            continue
        before, after = baseline[name], current[name]
        ratio = after / before if before > 0 else float("inf")
        marker = "REGRESSION" if ratio > args.threshold else "ok"
        print(
            f"  {marker:>10}  {name}: {before / 1e6:.3f} ms -> "
            f"{after / 1e6:.3f} ms ({ratio:.2f}x)"
        )
        if ratio > args.threshold:
            regressions.append((name, ratio))
    for name in sorted(set(baseline) - set(current)):
        print(f"  benchmark disappeared: {name}")

    if regressions:
        print(
            f"{len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold}x:"
        )
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"trend check passed ({len(current)} benchmark(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
