// AB2 — ablation: set-at-a-time meet_s (BAT joins) vs the naive
// pairwise cross product.
//
// The paper motivates meet_s with exactly this comparison: applying
// meet2 to every pair of a full-text result costs |S1| x |S2| walks and
// reports non-minimal duplicates, while meet_s lifts whole relations
// with one join per level. Expected shape: pairwise grows
// quadratically, meet_s near-linearly in the input cardinality.

#include <cstdio>
#include <string>
#include <vector>

#include "core/meet_pair.h"
#include "core/meet_set.h"
#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "text/search.h"
#include "util/timer.h"

using namespace meetxml;

int main() {
  data::DblpOptions options;
  options.icde_papers_per_year = 120;
  options.other_papers_per_year = 240;
  options.journal_articles_per_year = 100;
  auto generated = data::GenerateDblp(options);
  MEETXML_CHECK_OK(generated.status());
  auto doc_result = model::Shred(*generated);
  MEETXML_CHECK_OK(doc_result.status());
  const model::StoredDocument& doc = *doc_result;

  auto search_result = text::FullTextSearch::Build(doc);
  MEETXML_CHECK_OK(search_result.status());

  // Two uniformly-typed sets: booktitle cdatas containing "ICDE" and
  // year cdatas containing "1999" — the case-study inputs.
  auto icde = search_result->Search("ICDE", text::MatchMode::kContains);
  auto year = search_result->Search("1999", text::MatchMode::kContains);
  MEETXML_CHECK_OK(icde.status());
  MEETXML_CHECK_OK(year.status());

  // Pick the largest uniformly-typed set from each.
  auto biggest = [](const text::TermMatches& matches) {
    const core::AssocSet* best = nullptr;
    for (const core::AssocSet& set : matches.sets) {
      if (best == nullptr || set.size() > best->size()) best = &set;
    }
    return *best;
  };
  core::AssocSet left_all = biggest(*icde);
  core::AssocSet right_all = biggest(*year);
  std::printf("# AB2: set-at-a-time meet_s vs pairwise cross product\n");
  std::printf("# document: %zu nodes; full sets: |ICDE|=%zu |1999|=%zu\n",
              doc.node_count(), left_all.size(), right_all.size());
  std::printf("#\n# n (per side)  meet_s_ms  meet_s_joins  pairwise_ms  "
              "pairwise_walks\n");

  for (size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    if (n > left_all.size() || n > right_all.size()) break;
    core::AssocSet left{left_all.path,
                        {left_all.nodes.begin(), left_all.nodes.begin() + n}};
    core::AssocSet right{
        right_all.path,
        {right_all.nodes.begin(), right_all.nodes.begin() + n}};

    util::Timer timer;
    core::MeetSetStats stats;
    auto set_result = core::MeetSet(doc, left, right, {}, &stats);
    MEETXML_CHECK_OK(set_result.status());
    double set_ms = timer.ElapsedMillis();

    timer.Reset();
    size_t walks = 0;
    for (bat::Oid a : left.nodes) {
      for (bat::Oid b : right.nodes) {
        auto meet = core::MeetPair(doc, a, b);
        MEETXML_CHECK_OK(meet.status());
        ++walks;
      }
    }
    double pair_ms = timer.ElapsedMillis();

    std::printf("%13zu  %9.3f  %12d  %11.3f  %14zu\n", n, set_ms,
                stats.joins, pair_ms, walks);
  }
  std::printf("# expected shape: pairwise ~quadratic in n, meet_s "
              "~linear with a constant number of joins\n");
  return 0;
}
