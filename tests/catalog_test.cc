// Tests for the multi-document store catalog and the cross-document
// query routing on top of it: round-trips through one image, rename /
// remove / reload, legacy single-document images, glob scoping, and
// the pinned equivalence between MultiExecutor answers and the
// per-document single-executor answers.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "data/dblp_gen.h"
#include "data/paper_example.h"
#include "model/storage_io.h"
#include "obs/metrics.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "text/index_io.h"
#include "tests/test_util.h"
#include "util/byte_io.h"

namespace meetxml {
namespace store {
namespace {

using meetxml::testing::FindElement;
using meetxml::testing::MustShred;
using model::StoredDocument;

std::string NumberedXml(int n) {
  std::string xml = "<doc><entry><title>corpus number " +
                    std::to_string(n) + "</title><year>" +
                    std::to_string(1990 + n) + "</year></entry></doc>";
  return xml;
}

Catalog RoundTrip(const Catalog& catalog) {
  auto bytes = catalog.SaveToBytes();
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  auto loaded = Catalog::LoadFromBytes(*bytes);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  return std::move(*loaded);
}

TEST(Catalog, AddFindRemoveRename) {
  Catalog catalog;
  auto first = catalog.Add("alpha", MustShred("<a><b>x</b></a>"));
  ASSERT_TRUE(first.ok());
  auto second = catalog.Add("beta", MustShred("<c><d>y</d></c>"));
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
  EXPECT_EQ(catalog.size(), 2u);

  EXPECT_NE(catalog.Find("alpha"), nullptr);
  EXPECT_EQ(catalog.Find("gamma"), nullptr);
  EXPECT_TRUE(catalog.Get("gamma").status().IsNotFound());

  // Duplicate and malformed names are rejected.
  EXPECT_FALSE(catalog.Add("alpha", MustShred("<x/>")).ok());
  EXPECT_FALSE(catalog.Add("", MustShred("<x/>")).ok());
  EXPECT_FALSE(catalog.Add("a*b", MustShred("<x/>")).ok());
  EXPECT_FALSE(catalog.Rename("alpha", "beta").ok());
  EXPECT_FALSE(catalog.Rename("alpha", "who?").ok());

  MEETXML_CHECK_OK(catalog.Rename("alpha", "gamma"));
  EXPECT_EQ(catalog.Find("gamma")->id, *first);
  MEETXML_CHECK_OK(catalog.Remove("beta"));
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_TRUE(catalog.Remove("beta").IsNotFound());

  // Retired ids are never reused.
  auto third = catalog.Add("delta", MustShred("<e/>"));
  ASSERT_TRUE(third.ok());
  EXPECT_GT(*third, *second);
}

class CatalogRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(CatalogRoundTrip, NamedDocumentsSurviveSaveLoad) {
  size_t count = GetParam();
  Catalog catalog;
  for (size_t i = 0; i < count; ++i) {
    std::string name = "doc_" + std::to_string(i);
    ASSERT_TRUE(
        catalog.Add(name, MustShred(NumberedXml(static_cast<int>(i)))).ok());
  }

  Catalog loaded = RoundTrip(catalog);
  ASSERT_EQ(loaded.size(), count);
  for (size_t i = 0; i < count; ++i) {
    std::string name = "doc_" + std::to_string(i);
    const NamedDocument* original = catalog.Find(name);
    const NamedDocument* restored = loaded.Find(name);
    ASSERT_NE(restored, nullptr) << name;
    EXPECT_EQ(restored->id, original->id);
    EXPECT_EQ(restored->doc.node_count(), original->doc.node_count());
    EXPECT_EQ(restored->doc.string_count(), original->doc.string_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CatalogRoundTrip,
                         ::testing::Values(0u, 1u, 8u));

TEST(Catalog, RenameRemoveThenReload) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add("one", MustShred(NumberedXml(1))).ok());
  ASSERT_TRUE(catalog.Add("two", MustShred(NumberedXml(2))).ok());
  ASSERT_TRUE(catalog.Add("three", MustShred(NumberedXml(3))).ok());
  DocId two_id = catalog.Find("two")->id;

  MEETXML_CHECK_OK(catalog.Rename("two", "zwei"));
  MEETXML_CHECK_OK(catalog.Remove("one"));

  Catalog loaded = RoundTrip(catalog);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.Find("one"), nullptr);
  ASSERT_NE(loaded.Find("zwei"), nullptr);
  EXPECT_EQ(loaded.Find("zwei")->id, two_id);

  // next_doc_id survives: a post-reload Add gets a fresh id, not a
  // recycled one.
  auto added = loaded.Add("four", MustShred(NumberedXml(4)));
  ASSERT_TRUE(added.ok());
  EXPECT_GT(*added, loaded.Find("three")->id);
}

TEST(Catalog, PersistedIndexReloadsHot) {
  Catalog catalog;
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  size_t postings = index->posting_count();
  ASSERT_TRUE(
      catalog.Add("paper", std::move(doc), std::move(*index)).ok());
  ASSERT_TRUE(catalog.Add("plain", MustShred("<a><b>x</b></a>")).ok());

  Catalog loaded = RoundTrip(catalog);
  ASSERT_NE(loaded.Find("paper"), nullptr);
  ASSERT_TRUE(loaded.Find("paper")->index.has_value());
  EXPECT_EQ(loaded.Find("paper")->index->posting_count(), postings);
  EXPECT_FALSE(loaded.Find("plain")->index.has_value());
}

TEST(Catalog, LazilyBuiltExecutorIndexIsPersisted) {
  // An index the executor built on demand (first text predicate) rides
  // into the next Save without an explicit EnsureIndex.
  Catalog catalog;
  ASSERT_TRUE(
      catalog.Add("paper", MustShred(data::PaperExampleXml())).ok());
  auto executor = catalog.ExecutorFor("paper");
  ASSERT_TRUE(executor.ok());
  auto result = (*executor)->ExecuteText(
      "SELECT a FROM bibliography//cdata a WHERE a CONTAINS 'Bit'");
  ASSERT_TRUE(result.ok()) << result.status();

  Catalog loaded = RoundTrip(catalog);
  EXPECT_TRUE(loaded.Find("paper")->index.has_value());
}

TEST(Catalog, EnsureIndexPersists) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.Add("paper", MustShred(data::PaperExampleXml())).ok());
  MEETXML_CHECK_OK(catalog.EnsureIndex("paper"));
  Catalog loaded = RoundTrip(catalog);
  EXPECT_TRUE(loaded.Find("paper")->index.has_value());
}

TEST(Catalog, EnsureIndexAfterExecutorBuildsExactlyOneIndex) {
  // When the executor already exists, EnsureIndex must route the build
  // through it (not grow a sidecar copy the executor would rebuild).
  Catalog catalog;
  ASSERT_TRUE(
      catalog.Add("paper", MustShred(data::PaperExampleXml())).ok());
  auto executor = catalog.ExecutorFor("paper");
  ASSERT_TRUE(executor.ok());
  EXPECT_EQ((*executor)->text_index(), nullptr);
  MEETXML_CHECK_OK(catalog.EnsureIndex("paper"));
  EXPECT_NE((*executor)->text_index(), nullptr);
  EXPECT_FALSE(catalog.Find("paper")->index.has_value());
  Catalog loaded = RoundTrip(catalog);
  EXPECT_TRUE(loaded.Find("paper")->index.has_value());
}

TEST(Catalog, RowAndColumnarCatalogImagesLoadIdentically) {
  // The catalog-level byte-equality pin: a DOC0-pinned image and the
  // default DOC2 image restore the same catalog, shown by both loads
  // re-serializing to the very same bytes.
  Catalog catalog;
  StoredDocument paper = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(paper);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(
      catalog.Add("paper", std::move(paper), std::move(*index)).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        catalog.Add("doc_" + std::to_string(i), MustShred(NumberedXml(i)))
            .ok());
  }

  auto columnar = catalog.SaveToBytes();
  auto row = catalog.SaveToBytes(model::DocumentPayloadFormat::kRowOriented);
  ASSERT_TRUE(columnar.ok() && row.ok());
  EXPECT_EQ((*columnar)[4], 6);  // minor revision (DRV1 sections aboard)
  EXPECT_EQ((*row)[4], 3);

  auto from_columnar = Catalog::LoadFromBytes(*columnar);
  auto from_row = Catalog::LoadFromBytes(*row);
  ASSERT_TRUE(from_columnar.ok()) << from_columnar.status();
  ASSERT_TRUE(from_row.ok()) << from_row.status();
  auto columnar_again = from_row->SaveToBytes();
  auto row_again =
      from_columnar->SaveToBytes(model::DocumentPayloadFormat::kRowOriented);
  ASSERT_TRUE(columnar_again.ok() && row_again.ok());
  EXPECT_EQ(*columnar_again, *columnar);
  EXPECT_EQ(*row_again, *row);
}

TEST(Catalog, EmptyCatalogStaysLegacyReadable) {
  // No document sections aboard means nothing needs the minor-4
  // contract: an empty catalog stays a minor-2 image that older
  // readers can open.
  Catalog catalog;
  auto bytes = catalog.SaveToBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ((*bytes)[4], 2);
  auto loaded = Catalog::LoadFromBytes(*bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->empty());
}

TEST(Catalog, ParallelAndSerialDecodeAgree) {
  Catalog catalog;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        catalog.Add("doc_" + std::to_string(i), MustShred(NumberedXml(i)))
            .ok());
  }
  auto bytes = catalog.SaveToBytes();
  ASSERT_TRUE(bytes.ok());

  CatalogLoadStats serial_stats;
  CatalogLoadOptions serial;
  serial.threads = 1;
  serial.stats = &serial_stats;
  auto serial_loaded = Catalog::LoadFromBytes(*bytes, serial);
  ASSERT_TRUE(serial_loaded.ok()) << serial_loaded.status();

  CatalogLoadStats parallel_stats;
  CatalogLoadOptions parallel;
  parallel.threads = 8;
  parallel.stats = &parallel_stats;
  auto parallel_loaded = Catalog::LoadFromBytes(*bytes, parallel);
  ASSERT_TRUE(parallel_loaded.ok()) << parallel_loaded.status();

  auto serial_bytes = serial_loaded->SaveToBytes();
  auto parallel_bytes = parallel_loaded->SaveToBytes();
  ASSERT_TRUE(serial_bytes.ok() && parallel_bytes.ok());
  EXPECT_EQ(*parallel_bytes, *serial_bytes);
  EXPECT_EQ(*parallel_bytes, *bytes);

  EXPECT_EQ(serial_stats.threads_used, 1u);
  EXPECT_EQ(parallel_stats.threads_used, 8u);
  ASSERT_EQ(parallel_stats.documents.size(), 8u);
  for (const auto& doc_stats : parallel_stats.documents) {
    EXPECT_TRUE(doc_stats.columnar);
    EXPECT_FALSE(doc_stats.indexed);
  }
}

TEST(Catalog, ParallelDecodeReportsTheFirstBrokenEntry) {
  // Corrupt one document section (bypassing its checksum by
  // re-wrapping) and make sure the fan-out load still fails cleanly.
  Catalog catalog;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        catalog.Add("doc_" + std::to_string(i), MustShred(NumberedXml(i)))
            .ok());
  }
  auto bytes = catalog.SaveToBytes();
  ASSERT_TRUE(bytes.ok());
  auto sections = model::LoadSectionsFromBytes(*bytes);
  ASSERT_TRUE(sections.ok());
  std::vector<model::ImageSection> tampered;
  size_t doc_sections = 0;
  for (const model::SectionView& section : sections->sections) {
    std::string payload(section.bytes);
    if (model::IsDocumentSectionId(section.id) && ++doc_sections == 3) {
      payload.resize(payload.size() / 2);  // truncate the third document
    }
    tampered.push_back(model::ImageSection{section.id, std::move(payload)});
  }
  auto rewritten = model::SaveSectionsToBytes(tampered, 4);
  ASSERT_TRUE(rewritten.ok());
  for (unsigned threads : {1u, 8u}) {
    CatalogLoadOptions options;
    options.threads = threads;
    auto loaded = Catalog::LoadFromBytes(*rewritten, options);
    EXPECT_FALSE(loaded.ok()) << "threads=" << threads;
  }
}

TEST(Catalog, TidxAtDirectoryPositionZeroIsNotDropped) {
  // The writer emits CTLG first, but the format does not require it:
  // a TIDX sitting at directory position 0 must still reach its
  // document (position 0 is a valid section reference, not a "no
  // index" sentinel).
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  size_t postings = index->posting_count();
  auto doc_payload = model::SerializeDocumentSection(doc);
  ASSERT_TRUE(doc_payload.ok());

  util::ByteWriter directory;
  directory.U8(1);       // codec version
  directory.Varint(1);   // next_doc_id
  directory.Varint(1);   // one entry
  directory.Varint(0);   // id
  directory.StrVarint("paper");
  directory.Varint(2);   // doc section position
  directory.Varint(1);   // index section position + 1 -> position 0
  auto image = model::SaveSectionsToBytes(
      {model::ImageSection{model::kTextIndexSectionId,
                           text::SerializeIndex(*index)},
       model::ImageSection{model::kCatalogSectionId, directory.Take()},
       model::ImageSection{model::kAlignedColumnarDocumentSectionId,
                           std::move(*doc_payload)}},
      5);
  ASSERT_TRUE(image.ok());

  auto loaded = Catalog::LoadFromBytes(*image);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_NE(loaded->Find("paper"), nullptr);
  ASSERT_TRUE(loaded->Find("paper")->index.has_value());
  EXPECT_EQ(loaded->Find("paper")->index->posting_count(), postings);
}

TEST(Catalog, RejectsOverflowingNextDocId) {
  // A crafted CTLG whose next_doc_id exceeds the u32 id space would
  // truncate and hand out duplicate ids on the next Add; the loader
  // must reject it up front.
  util::ByteWriter payload;
  payload.U8(1);                          // codec version
  payload.Varint(uint64_t{1} << 32);      // next_doc_id beyond u32
  payload.Varint(0);                      // no entries
  auto image = model::SaveSectionsToBytes(
      {model::ImageSection{model::kCatalogSectionId, payload.Take()}}, 2);
  ASSERT_TRUE(image.ok());
  EXPECT_FALSE(Catalog::LoadFromBytes(*image).ok());
}

TEST(Catalog, LegacyImagesLoadAsOneEntryCatalog) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  for (uint32_t version : {1u, 2u}) {
    model::SaveOptions options;
    options.format_version = version;
    auto bytes = model::SaveToBytes(doc, options);
    ASSERT_TRUE(bytes.ok());
    auto catalog = Catalog::LoadFromBytes(*bytes);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    EXPECT_EQ(catalog->size(), 1u);
    // Named after the root tag.
    ASSERT_NE(catalog->Find("bibliography"), nullptr);
    EXPECT_EQ(catalog->Find("bibliography")->doc.node_count(),
              doc.node_count());
  }
}

TEST(Catalog, LegacyStoreBundleKeepsItsIndex) {
  StoredDocument doc = MustShred(data::PaperExampleXml());
  auto index = text::InvertedIndex::Build(doc);
  ASSERT_TRUE(index.ok());
  auto bytes = text::SaveStoreToBytes(doc, &*index);
  ASSERT_TRUE(bytes.ok());
  auto catalog = Catalog::LoadFromBytes(*bytes);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  ASSERT_EQ(catalog->size(), 1u);
  EXPECT_TRUE(catalog->entries().front()->index.has_value());
}

TEST(Catalog, SingleDocumentCatalogDegradesToLegacyReaders) {
  // A one-document row-oriented catalog is stamped minor 2: the
  // single-document loaders skip the CTLG section and still get the
  // document (and its TIDX). The DOC1 default opens through the same
  // API too (minor 4 readers understand both payloads). A
  // multi-document catalog is rejected by the single-document API.
  Catalog catalog;
  ASSERT_TRUE(
      catalog.Add("paper", MustShred(data::PaperExampleXml())).ok());
  MEETXML_CHECK_OK(catalog.EnsureIndex("paper"));
  for (auto format : {model::DocumentPayloadFormat::kRowOriented,
                      model::DocumentPayloadFormat::kColumnar}) {
    auto single = catalog.SaveToBytes(format);
    ASSERT_TRUE(single.ok());
    auto store = text::LoadStoreFromBytes(*single);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_TRUE(store->index.has_value());
  }
  EXPECT_EQ((*catalog.SaveToBytes(
      model::DocumentPayloadFormat::kRowOriented))[4], 2);

  ASSERT_TRUE(catalog.Add("second", MustShred("<a><b>x</b></a>")).ok());
  auto multi = catalog.SaveToBytes();
  ASSERT_TRUE(multi.ok());
  EXPECT_FALSE(model::LoadFromBytes(*multi).ok());
  EXPECT_TRUE(Catalog::LoadFromBytes(*multi).ok());
}

TEST(Catalog, FileRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add("one", MustShred(NumberedXml(1))).ok());
  ASSERT_TRUE(catalog.Add("two", MustShred(NumberedXml(2))).ok());
  std::string path =
      (std::filesystem::temp_directory_path() / "meetxml_catalog_test.mxm")
          .string();
  MEETXML_CHECK_OK(catalog.SaveToFile(path));
  auto loaded = Catalog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);
  std::filesystem::remove(path);
}

// --- Lazy opens -------------------------------------------------------

TEST(Catalog, LazyOpenDefersDecodingUntilFirstTouch) {
  Catalog catalog;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        catalog.Add("doc_" + std::to_string(i), MustShred(NumberedXml(i)))
            .ok());
  }
  auto bytes = catalog.SaveToBytes();
  ASSERT_TRUE(bytes.ok());

  CatalogLoadStats stats;
  CatalogLoadOptions options;
  options.lazy = true;
  options.stats = &stats;
  auto lazy = Catalog::LoadFromBytes(*bytes, options);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  // The open verified only the CTLG section; every per-document
  // checksum and decode is still pending.
  EXPECT_EQ(stats.deferred_documents, 3u);
  EXPECT_EQ(stats.sections_verified, 1u);
  EXPECT_EQ(stats.sections_deferred, 6u);  // 3 x (DOC2 + DRV1)
  for (const NamedDocument* entry : lazy->entries()) {
    EXPECT_FALSE(entry->materialized.load(std::memory_order_acquire));
  }

  // First touch materializes exactly the touched entry.
  auto doc = lazy->Get("doc_1");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->node_count(),
            catalog.Find("doc_1")->doc.node_count());
  EXPECT_TRUE(
      lazy->Find("doc_1")->materialized.load(std::memory_order_acquire));
  EXPECT_FALSE(
      lazy->Find("doc_0")->materialized.load(std::memory_order_acquire));
  EXPECT_FALSE(
      lazy->Find("doc_2")->materialized.load(std::memory_order_acquire));

  // Warm() forces the rest eagerly.
  MEETXML_CHECK_OK(lazy->Warm());
  for (const NamedDocument* entry : lazy->entries()) {
    EXPECT_TRUE(entry->materialized.load(std::memory_order_acquire));
    EXPECT_EQ(entry->doc.node_count(),
              catalog.Find(entry->name)->doc.node_count());
  }
}

TEST(Catalog, LazyOpenAnswersQueriesLikeAnEagerOne) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .Add("lib_a", MustShred("<library><article>"
                                          "<author>Alice Cooper</author>"
                                          "<title>Shredding XML</title>"
                                          "</article></library>"))
                  .ok());
  ASSERT_TRUE(catalog
                  .Add("lib_b", MustShred("<catalog><item>"
                                          "<creator>Alice Cooper</creator>"
                                          "</item></catalog>"))
                  .ok());
  auto bytes = catalog.SaveToBytes();
  ASSERT_TRUE(bytes.ok());

  auto eager = Catalog::LoadFromBytes(*bytes);
  ASSERT_TRUE(eager.ok());
  CatalogLoadOptions options;
  options.lazy = true;
  auto lazy = Catalog::LoadFromBytes(*bytes, options);
  ASSERT_TRUE(lazy.ok());

  MultiExecutor eager_exec(&*eager);
  MultiExecutor lazy_exec(&*lazy);
  const char* query =
      "SELECT a FROM *//cdata a WHERE a CONTAINS 'Alice'";
  auto want = eager_exec.ExecuteText("*", query, {});
  auto got = lazy_exec.ExecuteText("*", query, {});
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->ToText(), want->ToText());
  EXPECT_FALSE(want->rows.empty());
}

TEST(Catalog, LazyOpenIsolatesACorruptEntry) {
  Catalog catalog;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        catalog.Add("doc_" + std::to_string(i), MustShred(NumberedXml(i)))
            .ok());
  }
  auto bytes = catalog.SaveToBytes();
  ASSERT_TRUE(bytes.ok());
  auto sections = model::LoadSectionsFromBytes(*bytes);
  ASSERT_TRUE(sections.ok());

  // Flip one payload byte in the *second* DOC2 section. An eager open
  // refuses the whole image; a lazy open succeeds and quarantines the
  // damage to that entry's first touch.
  size_t doc_sections = 0;
  size_t flip_at = 0;
  for (const model::SectionView& section : sections->sections) {
    if (section.id == model::kAlignedColumnarDocumentSectionId &&
        ++doc_sections == 2) {
      flip_at = section.offset + section.bytes.size() / 2;
    }
  }
  ASSERT_NE(flip_at, 0u);
  std::string corrupt = *bytes;
  corrupt[flip_at] = static_cast<char>(corrupt[flip_at] ^ 0x40);

  EXPECT_FALSE(Catalog::LoadFromBytes(corrupt).ok());
  CatalogLoadOptions options;
  options.lazy = true;
  auto lazy = Catalog::LoadFromBytes(corrupt, options);
  ASSERT_TRUE(lazy.ok()) << lazy.status();

  int failures = 0;
  for (const NamedDocument* entry : lazy->entries()) {
    if (!lazy->Get(entry->name).ok()) ++failures;
  }
  EXPECT_EQ(failures, 1);
  // The bad entry is sticky (the checksum is not re-verified), and the
  // healthy neighbors keep answering.
  auto second = lazy->Get("doc_1");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(lazy->Get("doc_1").status().ToString(),
            second.status().ToString());
  ASSERT_TRUE(lazy->Get("doc_0").ok());
  ASSERT_TRUE(lazy->Get("doc_2").ok());
}

TEST(Catalog, QuarantineOpenDegradesOneRottenEntryNotTheStore) {
  Catalog catalog;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        catalog.Add("doc_" + std::to_string(i), MustShred(NumberedXml(i)))
            .ok());
  }
  auto bytes = catalog.SaveToBytes();
  ASSERT_TRUE(bytes.ok());
  auto sections = model::LoadSectionsFromBytes(*bytes);
  ASSERT_TRUE(sections.ok());
  size_t doc_sections = 0;
  size_t flip_at = 0;
  for (const model::SectionView& section : sections->sections) {
    if (section.id == model::kAlignedColumnarDocumentSectionId &&
        ++doc_sections == 2) {
      flip_at = section.offset + section.bytes.size() / 2;
    }
  }
  ASSERT_NE(flip_at, 0u);
  std::string corrupt = *bytes;
  corrupt[flip_at] = static_cast<char>(corrupt[flip_at] ^ 0x40);

  // The strict eager open refuses the image; the quarantining eager
  // open degrades: each entry's checksums are verified individually at
  // open time, failing entries park behind a sticky error (and count
  // in meetxml_catalog_quarantined), and the healthy rest fully
  // materializes — no lazy first-touch cost left behind.
  EXPECT_FALSE(Catalog::LoadFromBytes(corrupt).ok());
  uint64_t quarantined_before = obs::MetricsRegistry::Global()
                                    .counter("meetxml_catalog_quarantined")
                                    .Value();
  CatalogLoadOptions options;
  options.quarantine_corrupt = true;
  auto degraded = Catalog::LoadFromBytes(corrupt, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ASSERT_EQ(degraded->size(), 3u);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                    .counter("meetxml_catalog_quarantined")
                    .Value() -
                quarantined_before,
            1u);

  auto rotten = degraded->Get("doc_1");
  ASSERT_FALSE(rotten.ok());
  EXPECT_NE(rotten.status().message().find("quarantined at open"),
            std::string::npos);
  // Sticky: the error repeats verbatim, nothing is re-verified.
  EXPECT_EQ(degraded->Get("doc_1").status().ToString(),
            rotten.status().ToString());
  ASSERT_TRUE(degraded->Get("doc_0").ok());
  ASSERT_TRUE(degraded->Get("doc_2").ok());
  EXPECT_TRUE(degraded->Find("doc_0")->materialized.load(
      std::memory_order_acquire));

  // Queries over the survivors still answer.
  MultiExecutor executor(&*degraded);
  auto result = executor.ExecuteText(
      "doc_0", "SELECT COUNT(a) FROM doc_0//cdata a", {});
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(Catalog, ConcurrentLazyFirstTouchIsRaceFree) {
  Catalog catalog;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        catalog.Add("doc_" + std::to_string(i), MustShred(NumberedXml(i)))
            .ok());
  }
  auto bytes = catalog.SaveToBytes();
  ASSERT_TRUE(bytes.ok());
  CatalogLoadOptions options;
  options.lazy = true;
  auto lazy = Catalog::LoadFromBytes(*bytes, options);
  ASSERT_TRUE(lazy.ok());

  // Eight threads race Get() across all four pending entries; every
  // touch must see a fully decoded, validated document.
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 4; ++i) {
        std::string name = "doc_" + std::to_string((t + i) % 4);
        auto doc = lazy->Get(name);
        if (!doc.ok() || (*doc)->node_count() == 0) errors.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(Catalog, LazyOpenFallsBackToEagerForLegacyImages) {
  // A doc-only image has no CTLG directory to defer behind; a lazy
  // open quietly decodes it eagerly.
  StoredDocument doc = MustShred(NumberedXml(7));
  model::SaveOptions save;
  save.derived_section = false;
  auto bytes = model::SaveToBytes(doc, save);
  ASSERT_TRUE(bytes.ok());
  CatalogLoadStats stats;
  CatalogLoadOptions options;
  options.lazy = true;
  options.stats = &stats;
  auto lazy = Catalog::LoadFromBytes(*bytes, options);
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  EXPECT_EQ(stats.deferred_documents, 0u);
  ASSERT_EQ(lazy->size(), 1u);
  EXPECT_TRUE(lazy->entries()[0]->materialized.load(
      std::memory_order_acquire));
}

TEST(Catalog, MatchNamesGlob) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add("dblp_1999", MustShred("<a/>")).ok());
  ASSERT_TRUE(catalog.Add("dblp_2000", MustShred("<a/>")).ok());
  ASSERT_TRUE(catalog.Add("multimedia", MustShred("<a/>")).ok());
  EXPECT_EQ(catalog.MatchNames("*").size(), 3u);
  EXPECT_EQ(catalog.MatchNames("dblp_*").size(), 2u);
  EXPECT_EQ(catalog.MatchNames("dblp_199?").size(), 1u);
  EXPECT_EQ(catalog.MatchNames("multimedia").size(), 1u);
  EXPECT_TRUE(catalog.MatchNames("nothing*").empty());
}

// --- MultiExecutor ----------------------------------------------------

// Two bibliography-shaped corpora that share an author.
constexpr char kLibraryA[] = R"(<library>
  <article><author>Alice Cooper</author><title>Shredding XML for Fun</title>
    <year>1999</year></article>
  <article><author>Bob Dylan</author><title>Trees and Tables</title>
    <year>2000</year></article>
</library>)";

constexpr char kLibraryB[] = R"(<catalog>
  <item><creator>Alice Cooper</creator>
    <name>Shredding XML for Fun</name><published>1999</published></item>
  <item><creator>Carol King</creator>
    <name>Joins Considered Useful</name><published>2001</published></item>
</catalog>)";

Catalog TwoLibraries() {
  Catalog catalog;
  EXPECT_TRUE(catalog.Add("lib_a", MustShred(kLibraryA)).ok());
  EXPECT_TRUE(catalog.Add("lib_b", MustShred(kLibraryB)).ok());
  return catalog;
}

TEST(MultiExecutor, EmptyScopeIsAnError) {
  Catalog catalog = TwoLibraries();
  MultiExecutor multi(&catalog);
  auto result = multi.ExecuteText("nope*", "SELECT COUNT(a) FROM *//cdata a");
  EXPECT_TRUE(result.status().IsNotFound());

  // Same contract for the cross-document probe; a scope matching only
  // the source is legal and yields no matches.
  bat::Oid article = FindElement(catalog.Find("lib_a")->doc, "article");
  EXPECT_TRUE(
      multi.FindEverywhere("lib_a", article, "nope*").status().IsNotFound());
  auto self_only = multi.FindEverywhere("lib_a", article, "lib_a");
  ASSERT_TRUE(self_only.ok());
  EXPECT_TRUE(self_only->empty());
}

TEST(MultiExecutor, RoutesToScope) {
  Catalog catalog = TwoLibraries();
  MultiExecutor multi(&catalog);

  auto all = multi.ExecuteText("*", "SELECT COUNT(a) FROM *//cdata a");
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->per_document.size(), 2u);
  ASSERT_EQ(all->columns.size(), 2u);
  EXPECT_EQ(all->columns[0], "doc");

  auto one = multi.ExecuteText("lib_a", "SELECT COUNT(a) FROM *//cdata a");
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->rows.size(), 1u);
  EXPECT_EQ(one->rows[0][0], "lib_a");
}

TEST(MultiExecutor, MergedAnswersMatchPerDocumentExecutors) {
  // The acceptance pin: fanned-out answers are exactly the union of
  // the single-document answers, document-qualified, with MEET rows
  // re-ranked by witness distance.
  Catalog catalog = TwoLibraries();
  const std::string query =
      "SELECT MEET(a, b) FROM *//cdata a, *//cdata b "
      "WHERE a ICONTAINS 'Alice' AND b ICONTAINS '1999'";

  MultiExecutor multi(&catalog);
  auto merged = multi.ExecuteText("*", query);
  ASSERT_TRUE(merged.ok()) << merged.status();

  size_t single_total = 0;
  for (const std::string& name : catalog.MatchNames("*")) {
    auto executor = catalog.ExecutorFor(name);
    ASSERT_TRUE(executor.ok());
    auto single = (*executor)->ExecuteText(query);
    ASSERT_TRUE(single.ok()) << single.status();
    single_total += single->rows.size();
    // Every single-document row appears in the merged result, with the
    // document name prepended.
    for (const auto& row : single->rows) {
      std::vector<std::string> qualified;
      qualified.push_back(name);
      qualified.insert(qualified.end(), row.begin(), row.end());
      EXPECT_NE(std::find(merged->rows.begin(), merged->rows.end(),
                          qualified),
                merged->rows.end())
          << "missing row from " << name;
    }
  }
  EXPECT_EQ(merged->rows.size(), single_total);
  ASSERT_GE(merged->rows.size(), 2u);  // one concept per library

  // Rows are globally ordered by ascending witness distance.
  auto distance_of = [&](const std::vector<std::string>& row) {
    for (const auto& doc_result : merged->per_document) {
      if (doc_result.name != row[0]) continue;
      for (size_t r = 0; r < doc_result.result.rows.size(); ++r) {
        if (std::equal(row.begin() + 1, row.end(),
                       doc_result.result.rows[r].begin(),
                       doc_result.result.rows[r].end())) {
          return doc_result.result.meets[r].witness_distance;
        }
      }
    }
    ADD_FAILURE() << "row not found in per-document results";
    return -1;
  };
  for (size_t r = 1; r < merged->rows.size(); ++r) {
    EXPECT_LE(distance_of(merged->rows[r - 1]),
              distance_of(merged->rows[r]));
  }

  // Both libraries surface their connecting concept.
  std::set<std::string> docs_answering;
  for (const auto& row : merged->rows) docs_answering.insert(row[0]);
  EXPECT_EQ(docs_answering.size(), 2u);
}

TEST(MultiExecutor, LimitAppliesAcrossDocuments) {
  Catalog catalog = TwoLibraries();
  MultiExecutor multi(&catalog);
  auto result = multi.ExecuteText(
      "*", "SELECT a FROM *//cdata a LIMIT 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
  // A LIMIT satisfied exactly is a complete answer, not a truncated
  // one: the user asked for one row and got one row.
  EXPECT_FALSE(result->truncated);
  EXPECT_GT(result->rows_found, 1u);
}

TEST(MultiExecutor, MaxRowsValveIsTruncationButLimitIsNot) {
  // The distinction the streaming-top-k semantics pin down: dropping
  // rows because of the max_rows safety valve leaves the answer
  // incomplete (truncated), while an explicit LIMIT that was met
  // exactly does not.
  Catalog catalog = TwoLibraries();
  MultiExecutor multi(&catalog);

  query::ExecuteOptions capped;
  capped.max_rows = 1;
  auto valve = multi.ExecuteText("*", "SELECT a FROM *//cdata a", capped);
  ASSERT_TRUE(valve.ok());
  EXPECT_EQ(valve->rows.size(), 1u);
  EXPECT_TRUE(valve->truncated);

  // A LIMIT larger than the answer is also complete.
  auto all = multi.ExecuteText(
      "*", "SELECT a FROM *//cdata a LIMIT 100000");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), all->rows_found);
  EXPECT_FALSE(all->truncated);
}

TEST(MultiExecutor, CrossDocumentMeetFindsTheSharedItem) {
  // Paper §4: find the item from one bibliography inside another whose
  // markup is unknown. The shared article's nearest concept in lib_b
  // must be the <item> that carries the same creator/name, and the
  // fan-out answer must match the direct cross_document call.
  Catalog catalog = TwoLibraries();
  MultiExecutor multi(&catalog);

  const NamedDocument* lib_a = catalog.Find("lib_a");
  bat::Oid article = FindElement(lib_a->doc, "article");

  auto matches = multi.FindEverywhere("lib_a", article);
  ASSERT_TRUE(matches.ok()) << matches.status();
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ(matches->front().name, "lib_b");
  const model::StoredDocument& target = catalog.Find("lib_b")->doc;
  EXPECT_EQ(target.tag((*matches)[0].meet.meet), "item");

  // Equivalence with the single-target API.
  auto executor = catalog.ExecutorFor("lib_b");
  ASSERT_TRUE(executor.ok());
  auto search = (*executor)->TextSearch();
  ASSERT_TRUE(search.ok());
  auto direct = text::FindInOtherDocument(lib_a->doc, article, target,
                                          **search);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_EQ(matches->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*matches)[i].meet.meet, (*direct)[i].meet);
    EXPECT_EQ((*matches)[i].meet.witness_distance,
              (*direct)[i].witness_distance);
  }
}

TEST(MultiExecutor, CatalogRoundTripPreservesAnswers) {
  // Save the catalog, reload it, and ask the same question: the
  // reloaded store must answer identically (ids, names, rows).
  Catalog catalog = TwoLibraries();
  const std::string query =
      "SELECT MEET(a, b) FROM *//cdata a, *//cdata b "
      "WHERE a ICONTAINS 'Alice' AND b ICONTAINS '1999'";
  MultiExecutor multi(&catalog);
  auto before = multi.ExecuteText("*", query);
  ASSERT_TRUE(before.ok());

  Catalog reloaded = RoundTrip(catalog);
  MultiExecutor multi_after(&reloaded);
  auto after = multi_after.ExecuteText("*", query);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rows, before->rows);
  EXPECT_EQ(after->columns, before->columns);
}

}  // namespace
}  // namespace store
}  // namespace meetxml
