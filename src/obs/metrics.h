// Observability primitives: a process-wide registry of named counters,
// gauges and log-bucketed latency histograms.
//
// The serving stack (server/service.h dispatch, the worker pool, the
// catalog's lazy decode path, bulk load) records into these on its hot
// paths, so the design goal is "one relaxed atomic add per event":
// counters and histograms are sharded into cache-line-sized per-thread
// cells and merged only when somebody reads them. Reads are exact with
// respect to everything that happened-before the read through external
// synchronization (a joined thread, a mutex handoff, the connection
// strand) — the same visibility contract the session table already
// gives the stats path.
//
// Nothing here reads a clock: callers record durations they measured
// themselves, which is what keeps tests deterministic — inject a fake
// clock where the duration is produced (obs/trace.h, ServiceOptions,
// WorkerPoolOptions) and the histograms pin exactly.
//
// Lookup by name takes a mutex; hot paths resolve their handles once
// (at service construction or behind a function-local static) and then
// only touch atomics. Returned references stay valid for the
// registry's lifetime.

#ifndef MEETXML_OBS_METRICS_H_
#define MEETXML_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace meetxml {
namespace obs {

/// \brief Shards per sharded metric. Threads hash onto shards, so this
/// bounds contention, not thread count; a power of two keeps the
/// modulo a mask.
inline constexpr size_t kShardCount = 8;

/// \brief The calling thread's shard, assigned round-robin on first
/// use — stable for the thread's lifetime.
size_t ThisThreadShard();

/// \brief Monotonic microseconds — the production clock behind every
/// injected-clock seam in this layer.
uint64_t MonotonicMicros();

/// \brief A sharded monotonic counter: Add is one relaxed-ordered
/// atomic add on the caller's shard; Value merges the shards.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[ThisThreadShard()].value.fetch_add(delta,
                                              std::memory_order_release);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_acquire);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kShardCount];
};

/// \brief A point-in-time signed value (queue depth, active sessions,
/// bytes mapped). Single cell: gauges move on slow paths or by ±1.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_release); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_acq_rel);
  }
  int64_t Value() const { return value_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Merged view of one histogram: totals plus quantile estimates
/// (bucket upper bounds — see Histogram::BucketUpperBound).
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

/// \brief A log-bucketed histogram of unsigned values (typically
/// microseconds). Bucket i holds the values with bit width i — 0 in
/// bucket 0, 1 in bucket 1, [2,3] in bucket 2, [4,7] in bucket 3 … —
/// so Record is "count leading zeros + one relaxed add" with no
/// per-value allocation, and quantiles come back as deterministic
/// bucket upper bounds (exactly reproducible in tests).
class Histogram {
 public:
  /// One bucket per possible bit width of a uint64_t.
  static constexpr size_t kBucketCount = 65;

  static size_t BucketIndex(uint64_t value);
  /// \brief The largest value bucket `index` admits (0, 1, 3, 7, …).
  static uint64_t BucketUpperBound(size_t index);

  void Record(uint64_t value) {
    Shard& shard = shards_[ThisThreadShard()];
    shard.counts[BucketIndex(value)].fetch_add(1,
                                               std::memory_order_release);
    shard.sum.fetch_add(value, std::memory_order_release);
  }

  /// \brief Merged bucket counts (kBucketCount entries).
  std::vector<uint64_t> MergedBuckets() const;

  HistogramSummary Summary() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kBucketCount] = {};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[kShardCount];
};

/// \brief One named histogram's merged summary, as exported by kStats
/// v2 (server/protocol.h keeps a wire-struct mirror of this).
struct NamedSummary {
  /// Exposition-style name: `name` or `name{labels}`.
  std::string name;
  HistogramSummary summary;
};

/// \brief A registry of named metrics. `Global()` is the process-wide
/// instance everything instruments by default; tests build their own
/// for isolation. Metrics are identified by (name, labels) where
/// labels is a raw Prometheus label body like `op="query"` (may be
/// empty); the first lookup creates the metric, later lookups return
/// the same object. Thread-safe; returned references never move.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& counter(std::string_view name, std::string_view labels = "");
  Gauge& gauge(std::string_view name, std::string_view labels = "");
  Histogram& histogram(std::string_view name, std::string_view labels = "");

  /// \brief Prometheus text exposition: counters and gauges as single
  /// samples, histograms as summaries (`{quantile="…"}` samples plus
  /// `_sum` / `_count`). Deterministic order (sorted by name, then
  /// labels); empty histograms are skipped.
  std::string RenderPrometheus() const;

  /// \brief Every non-empty histogram's merged summary, sorted — the
  /// payload of a kStats v2 reply.
  std::vector<NamedSummary> HistogramSummaries() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  Entry& Lookup(std::string_view name, std::string_view labels, Kind kind);

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
};

}  // namespace obs
}  // namespace meetxml

#endif  // MEETXML_OBS_METRICS_H_
