#include "xml/serializer.h"

#include "xml/escape.h"

namespace meetxml {
namespace xml {

namespace {

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

void SerializeNode(const Node& node, const SerializeOptions& options,
                   int depth, std::string* out) {
  switch (node.kind()) {
    case NodeKind::kText:
      out->append(EscapeText(node.text()));
      return;
    case NodeKind::kComment:
      AppendIndent(out, options.indent, depth);
      out->append("<!--");
      out->append(node.text());
      out->append("-->");
      return;
    case NodeKind::kProcessingInstruction:
      AppendIndent(out, options.indent, depth);
      out->append("<?");
      out->append(node.pi_target());
      if (!node.text().empty()) {
        out->push_back(' ');
        out->append(node.text());
      }
      out->append("?>");
      return;
    case NodeKind::kElement:
      break;
  }

  AppendIndent(out, options.indent, depth);
  out->push_back('<');
  out->append(node.tag());
  for (const Attribute& attr : node.attributes()) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(EscapeAttribute(attr.value));
    out->push_back('"');
  }
  if (node.children().empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');

  bool has_element_child = false;
  for (const auto& child : node.children()) {
    if (!child->is_text()) has_element_child = true;
    SerializeNode(*child, options, depth + 1, out);
  }
  // Only break the line before a closing tag when we pretty-printed
  // element children; mixed text must stay glued to the tags.
  if (has_element_child) {
    AppendIndent(out, options.indent, depth);
  }
  out->append("</");
  out->append(node.tag());
  out->push_back('>');
}

}  // namespace

std::string Serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  SerializeNode(node, options, 0, &out);
  if (options.indent > 0 && !out.empty() && out.front() == '\n') {
    out.erase(out.begin());
  }
  return out;
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  std::string out;
  if (options.emit_declaration) {
    out.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options.indent > 0) out.push_back('\n');
  }
  if (doc.root) {
    out.append(Serialize(*doc.root, options));
  }
  if (options.indent > 0) out.push_back('\n');
  return out;
}

}  // namespace xml
}  // namespace meetxml
