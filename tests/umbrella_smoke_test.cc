// Smoke test for the umbrella header: #include "meetxml.h" alone must pull
// in the entire public API and link cleanly. Catches umbrella-header drift
// (a new public header that was never added to meetxml.h, or an entry that
// rotted) as the tree grows.

#include "meetxml.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeader, PullsInEveryLayer) {
  // Touch one symbol per layer so the linker has to resolve against the
  // library, not just the preprocessor.
  EXPECT_TRUE(meetxml::util::Status::OK().ok());                    // util
  EXPECT_EQ(meetxml::xml::EscapeText("a<b"), "a&lt;b");             // xml
  EXPECT_NE(meetxml::bat::kInvalidOid, meetxml::bat::Oid{0});       // bat
  auto doc = meetxml::model::ShredXmlText("<r><a>x</a></r>");       // model
  ASSERT_TRUE(doc.ok());
  EXPECT_GT(doc->node_count(), 0u);
  EXPECT_FALSE(meetxml::text::Tokenize("meet operator").empty());   // text
  auto meet = meetxml::core::MeetPair(*doc, doc->root(), doc->root());  // core
  EXPECT_TRUE(meet.ok());
  auto exec = meetxml::query::Executor::Build(*doc);                // query
  EXPECT_TRUE(exec.ok());
}

}  // namespace
