// Invariant validation for StoredDocument — a deep self-check over the
// Monet transform. Run after loading untrusted storage images, in tests,
// and in debugging sessions; it verifies every structural property the
// meet algorithms rely on.

#ifndef MEETXML_MODEL_VALIDATE_H_
#define MEETXML_MODEL_VALIDATE_H_

#include "model/document.h"
#include "util/status.h"

namespace meetxml {
namespace model {

/// \brief Checks every invariant of a finalized document:
///  * node 0 is the root, every other node's parent has a smaller OID
///    (DFS order),
///  * each node's path's parent equals its parent's path,
///  * depth(node) == depth(path(node)) for all nodes,
///  * the children CSR inverts the parent column and respects rank
///    order,
///  * every edge relation holds exactly the nodes of its path, and the
///    union of edge relations covers every node exactly once,
///  * string relations reference live owners of the right path (cdata
///    strings owned by cdata nodes of that path; attribute strings
///    owned by elements of the parent path); every cdata node has
///    exactly one string,
///  * the path summary is acyclic with parents interned before
///    children and correct depths.
///
/// Returns the first violation found, or OK.
util::Status ValidateDocument(const StoredDocument& doc);

}  // namespace model
}  // namespace meetxml

#endif  // MEETXML_MODEL_VALIDATE_H_
