// Token definitions for the query language lexer.

#ifndef MEETXML_QUERY_TOKEN_H_
#define MEETXML_QUERY_TOKEN_H_

#include <string>

namespace meetxml {
namespace query {

/// \brief Token kinds. Keywords are case-insensitive in the source text.
enum class TokenKind {
  kEof,
  kIdentifier,   // bibliography, o1, $x (leading $ allowed)
  kString,       // 'Bit' or "Bit"
  kInteger,      // 42
  kComma,        // ,
  kLparen,       // (
  kRparen,       // )
  kSlash,        // /
  kDoubleSlash,  // //
  kStar,         // *
  kAt,           // @
  kEquals,       // =
  kLessEqual,    // <=
  // Keywords:
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kAs,
  kContains,
  kIcontains,
  kWord,
  kPhrase,
  kSynonym,
  kMeet,
  kGraphMeet,
  kAncestors,
  kTag,
  kPath,
  kXml,
  kCount,
  kDistance,
  kExclude,
  kWithin,
  kLimit,
};

/// \brief Human-readable name of a token kind for error messages.
const char* TokenKindName(TokenKind kind);

/// \brief One lexed token with its source position (1-based).
struct Token {
  TokenKind kind;
  std::string text;  // identifier name / string contents / integer text
  int position;      // byte offset in the query text
};

}  // namespace query
}  // namespace meetxml

#endif  // MEETXML_QUERY_TOKEN_H_
