#include "util/rng.h"

namespace meetxml {
namespace util {

namespace {
inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::string Rng::NextWord(int min_len, int max_len) {
  int len = static_cast<int>(NextInRange(min_len, max_len));
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + NextBelow(26)));
  }
  return out;
}

int Rng::NextGeometric(double p, int cap) {
  int n = 0;
  while (n < cap && NextBool(p)) ++n;
  return n;
}

}  // namespace util
}  // namespace meetxml
