// meetxmld: serve a catalog image over TCP.
//
// The paper frames the meet operator as the engine of an *interactive*
// query session ("the user gets an answer without knowing the
// schema"); this daemon is that session made concrete: one
// view-backed catalog opened zero-copy, warmed once, then shared
// read-only by every connection of a worker pool.
//
// Run:  ./meetxmld [store.mxm] [port] [--warm]
//               [--slow-query-ms N] [--stats-interval-s N]
//               [--queue-cap N] [--deadline-ms N] [--busy-retry-ms N]
//
// --slow-query-ms N flags any query whose staged time reaches N ms
// (counted in meetxml_server_slow_queries_total and marked in the
// kDump query log). --stats-interval-s N logs a one-line stats summary
// every N seconds. Live introspection: the STATS opcode carries
// histogram summaries (protocol v2) and DUMP returns the full
// Prometheus-style exposition — see ./meetxml_client <port> stats|dump.
//
// Overload policy: --queue-cap N (default 256, 0 = unbounded) bounds
// queries admitted at once across every connection — the query that
// would exceed it earns a busy reply carrying the --busy-retry-ms
// hint (default 100) instead of queueing without limit; --deadline-ms
// N additionally sheds queries that waited longer than N ms between
// admission and dispatch (0 = off). Shed queries count in
// meetxml_server_shed_total / meetxml_server_deadline_exceeded_total.
//
// The open is lazy by default: only the image framing and the catalog
// directory are verified, so startup costs O(directory) no matter how
// large the corpus is; each document's checksum gate and decode run on
// its first query. Pass --warm to restore the old behavior — decode
// every document and build every text index before accepting
// connections, so no client ever pays a first-touch build.
//
// When the store image does not exist yet, a small demo catalog of
// three synthetic bibliographies is generated and saved there first,
// so the example is runnable standalone. Stop with Ctrl-C: the server
// drains in-flight queries before exiting.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "store/catalog.h"
#include "util/timer.h"

using namespace meetxml;  // example code; the library itself never does this

namespace {

util::Status BuildDemoStore(const std::string& path) {
  std::printf("no image at %s — generating a demo catalog...\n",
              path.c_str());
  store::Catalog catalog;
  const struct {
    const char* name;
    uint64_t seed;
  } corpora[] = {{"dblp", 42}, {"hcibib", 7}, {"sigmod", 1999}};
  for (const auto& corpus : corpora) {
    data::DblpOptions options;
    options.seed = corpus.seed;
    options.icde_papers_per_year = 20;
    options.other_papers_per_year = 60;
    options.journal_articles_per_year = 20;
    MEETXML_ASSIGN_OR_RETURN(std::string xml_text,
                             data::GenerateDblpXml(options));
    MEETXML_ASSIGN_OR_RETURN(model::StoredDocument doc,
                             model::ShredXmlText(xml_text));
    MEETXML_RETURN_NOT_OK(
        catalog.Add(corpus.name, std::move(doc)).status());
    MEETXML_RETURN_NOT_OK(catalog.EnsureIndex(corpus.name));
  }
  return catalog.SaveToFile(path);
}

}  // namespace

int main(int argc, char** argv) {
  bool warm = false;
  uint64_t slow_query_ms = 0;
  uint64_t stats_interval_s = 0;
  uint64_t queue_cap = 256;
  uint64_t deadline_ms = 0;
  uint64_t busy_retry_ms = 100;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--warm") == 0) {
      warm = true;
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0 &&
               i + 1 < argc) {
      slow_query_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stats-interval-s") == 0 &&
               i + 1 < argc) {
      stats_interval_s = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queue-cap") == 0 && i + 1 < argc) {
      queue_cap = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 &&
               i + 1 < argc) {
      deadline_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--busy-retry-ms") == 0 &&
               i + 1 < argc) {
      busy_retry_ms = std::strtoull(argv[++i], nullptr, 10);
    } else {
      positional.push_back(argv[i]);
    }
  }
  std::string store_path =
      !positional.empty() ? positional[0] : "/tmp/meetxmld_store.mxm";
  uint16_t port = positional.size() > 1
                      ? static_cast<uint16_t>(std::stoi(positional[1]))
                      : 0;

  // Serving threads must inherit the blocked mask, so block SIGINT /
  // SIGTERM before any thread exists and collect them with sigwait.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  // 1. Zero-copy lazy open: columns stay views over the mapped image
  //    and every per-document decode is deferred to first touch, so
  //    the open only reads the directory. A missing image gets the
  //    demo catalog generated in its place.
  util::Timer timer;
  store::CatalogLoadStats open_stats;
  store::CatalogLoadOptions load_options;
  load_options.mode = model::LoadMode::kView;
  load_options.lazy = true;
  load_options.stats = &open_stats;
  auto catalog = store::Catalog::LoadFromFile(store_path, load_options);
  if (catalog.status().IsNotFound()) {
    MEETXML_CHECK_OK(BuildDemoStore(store_path));
    timer.Reset();
    catalog = store::Catalog::LoadFromFile(store_path, load_options);
  }
  MEETXML_CHECK_OK(catalog.status());
  double open_ms = timer.ElapsedMillis();

  // 2. Optionally warm every executor and text index up front (the
  //    pre-lazy-open behavior): serving threads then never pay a
  //    first-touch decode or index build under a client's query.
  timer.Reset();
  if (warm) {
    MEETXML_CHECK_OK(catalog->Warm(/*build_text_indexes=*/true));
  }
  double warm_ms = timer.ElapsedMillis();

  server::ServiceOptions service_options;
  service_options.slow_query_ms = slow_query_ms;
  service_options.queue_cap = queue_cap;
  service_options.queue_deadline_ms = deadline_ms;
  service_options.busy_retry_after_ms = busy_retry_ms;
  server::QueryService service(&*catalog, std::move(service_options));
  server::TcpServerOptions server_options;
  server_options.port = port;
  auto server = server::TcpServer::Start(&service, server_options);
  MEETXML_CHECK_OK(server.status());

  // Periodic one-line stats logging: a plain thread parked on a CV so
  // shutdown wakes it immediately (no sleep-loop lag).
  std::mutex stats_mu;
  std::condition_variable stats_cv;
  bool stats_stop = false;
  std::thread stats_thread;
  if (stats_interval_s > 0) {
    stats_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(stats_mu);
      while (!stats_cv.wait_for(lock,
                                std::chrono::seconds(stats_interval_s),
                                [&] { return stats_stop; })) {
        server::ServiceStats stats = service.stats();
        obs::HistogramSummary queries =
            service.metrics()
                .histogram("meetxml_server_request_us", "op=\"query\"")
                .Summary();
        std::printf("stats: %llu queries (p50 %llu us, p99 %llu us), "
                    "%llu errors, %llu sessions, %llu slow\n",
                    static_cast<unsigned long long>(stats.queries_served),
                    static_cast<unsigned long long>(queries.p50),
                    static_cast<unsigned long long>(queries.p99),
                    static_cast<unsigned long long>(stats.request_errors),
                    static_cast<unsigned long long>(stats.sessions_active),
                    static_cast<unsigned long long>(
                        service.metrics()
                            .counter("meetxml_server_slow_queries_total")
                            .Value()));
        std::fflush(stdout);
      }
    });
  }

  std::printf("meetxmld: %zu document(s) from %s "
              "(open %.1f ms, %zu deferred, %zu/%zu checksums verified",
              catalog->size(), store_path.c_str(), open_ms,
              open_stats.deferred_documents, open_stats.sections_verified,
              open_stats.sections_verified + open_stats.sections_deferred);
  if (warm) {
    std::printf(", warm %.1f ms)\n", warm_ms);
  } else {
    std::printf(", lazy — pass --warm to pre-decode)\n");
  }
  for (const store::NamedDocument* entry : catalog->entries()) {
    if (entry->materialized.load(std::memory_order_acquire)) {
      std::printf("  %-12s %llu nodes\n", entry->name.c_str(),
                  static_cast<unsigned long long>(entry->doc.node_count()));
    } else {
      std::printf("  %-12s (deferred)\n", entry->name.c_str());
    }
  }
  std::printf("listening on 127.0.0.1:%u — try:\n"
              "  ./meetxml_client %u \"*\" \"SELECT MEET(a, b) FROM "
              "dblp//cdata a, dblp//cdata b WHERE a CONTAINS 'ICDE' "
              "AND b CONTAINS '1995' EXCLUDE dblp LIMIT 5\"\n",
              (*server)->port(), (*server)->port());

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::printf("\nsignal %d — draining...\n", signal_number);
  if (stats_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      stats_stop = true;
    }
    stats_cv.notify_all();
    stats_thread.join();
  }
  (*server)->Stop();
  service.Shutdown();

  server::ServiceStats stats = service.stats();
  std::printf("served %llu queries (%llu request errors, %llu shed, "
              "%llu sessions evicted)\n",
              static_cast<unsigned long long>(stats.queries_served),
              static_cast<unsigned long long>(stats.request_errors),
              static_cast<unsigned long long>(stats.queries_shed),
              static_cast<unsigned long long>(stats.sessions_evicted));
  return 0;
}
