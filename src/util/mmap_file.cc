#include "util/mmap_file.h"

#include "util/file_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define MEETXML_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace meetxml {
namespace util {

Result<MmapFile> MmapFile::Open(const std::string& path) {
#if defined(MEETXML_HAVE_MMAP)
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      MmapFile file;
      if (st.st_size == 0) {
        // Empty files map to an empty view without calling mmap (which
        // rejects zero-length mappings).
        ::close(fd);
        return file;
      }
      void* mapped = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                            PROT_READ, MAP_PRIVATE, fd, 0);
      // The mapping keeps its own reference; the descriptor is done
      // either way.
      ::close(fd);
      if (mapped != MAP_FAILED) {
        file.mapped_ = mapped;
        file.mapped_size_ = static_cast<size_t>(st.st_size);
        return file;
      }
      // mmap refused (exotic filesystem, resource limits): fall through
      // to the buffered read below.
    } else {
      ::close(fd);
    }
  }
  // A failed open still goes through the buffered reader so the error
  // message (NotFound with the path) stays in one place.
#endif
  MEETXML_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  MmapFile file;
  file.buffer_ = std::move(content);
  return file;
}

void MmapFile::Release() {
#if defined(MEETXML_HAVE_MMAP)
  if (mapped_ != nullptr) {
    ::munmap(mapped_, mapped_size_);
  }
#endif
  mapped_ = nullptr;
  mapped_size_ = 0;
  buffer_.clear();
}

}  // namespace util
}  // namespace meetxml
