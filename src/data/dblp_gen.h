// Synthetic DBLP-shaped bibliography generator.
//
// Substitution for the real DBLP snapshot the paper's case study uses
// (§5, Figure 7; see docs/paper_map.md). The generator reproduces the
// properties the experiment depends on:
//  * DBLP's element vocabulary (inproceedings/article/proceedings with
//    author/title/pages/year/booktitle/journal/... children),
//  * per-year ICDE proceedings from `start_year` to `end_year` with NO
//    ICDE in 1985 (the "small step at about 1100 on the x-axis"),
//  * schema irregularity: optional fields appear probabilistically, so
//    the path summary is larger than the element vocabulary,
//  * controlled false-positive sources: occasional titles containing
//    venue names and page numbers that look like years.

#ifndef MEETXML_DATA_DBLP_GEN_H_
#define MEETXML_DATA_DBLP_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "xml/dom.h"

namespace meetxml {
namespace data {

/// \brief Generator knobs.
struct DblpOptions {
  uint64_t seed = 42;
  int start_year = 1984;
  int end_year = 1999;
  /// ICDE papers per proceedings-year (none in 1985, as in real DBLP —
  /// ICDE skipped 1985).
  int icde_papers_per_year = 60;
  /// Conference papers per year across the other venues.
  int other_papers_per_year = 150;
  /// Journal articles per year.
  int journal_articles_per_year = 60;
  /// Probability of each optional field (ee, url, note, month, editor).
  double optional_field_prob = 0.25;
  /// Probability that a title mentions a venue name (false-positive
  /// source for the "ICDE" full-text search).
  double venue_in_title_prob = 0.002;
  /// Wrap entries per-venue under <proceedings> containers instead of
  /// DBLP's flat layout (exercises deeper trees).
  bool nested_proceedings = false;
};

/// \brief Generates the bibliography DOM. Deterministic in `seed`.
util::Result<xml::Document> GenerateDblp(const DblpOptions& options);

/// \brief Convenience: generated document as XML text.
util::Result<std::string> GenerateDblpXml(const DblpOptions& options);

/// \brief The venue list used by the generator ("ICDE" first).
const std::vector<std::string>& DblpVenues();

}  // namespace data
}  // namespace meetxml

#endif  // MEETXML_DATA_DBLP_GEN_H_
