// Input format of the meet operators.
//
// The meet algorithms consume *associations* (paper Definition 2): a
// schema path plus the node the association hangs off. For element and
// cdata associations the node is the element/cdata node itself; for
// attribute associations — which have no node of their own in the syntax
// tree — the node is the owning element and the path still identifies the
// attribute arc, so the attribute step counts as one edge for distance
// purposes, exactly as in the paper's Figure 1 drawing.

#ifndef MEETXML_CORE_INPUT_SET_H_
#define MEETXML_CORE_INPUT_SET_H_

#include <vector>

#include "bat/oid.h"
#include "model/document.h"

namespace meetxml {
namespace core {

using bat::Oid;
using bat::PathId;
using model::StoredDocument;

/// \brief One association endpoint fed into a meet.
struct Assoc {
  PathId path;  // schema path of the association
  Oid node;     // its node (owner element for attribute paths)

  bool operator==(const Assoc& other) const {
    return path == other.path && node == other.node;
  }
  bool operator<(const Assoc& other) const {
    if (path != other.path) return path < other.path;
    return node < other.node;
  }
};

/// \brief Makes the association for a plain node (element or cdata).
inline Assoc AssocForNode(const StoredDocument& doc, Oid node) {
  return Assoc{doc.path(node), node};
}

/// \brief A set of associations of one uniform type (one schema path) —
/// "there is a path p in the path summary so that ∀o ∈ Σ : path(o) = p"
/// (paper §3.2).
struct AssocSet {
  PathId path = bat::kInvalidPathId;
  std::vector<Oid> nodes;

  size_t size() const { return nodes.size(); }
  bool empty() const { return nodes.empty(); }
};

/// \brief Depth of an association: path depth (attribute arcs add one
/// level below their owner element).
inline uint32_t AssocDepth(const StoredDocument& doc, const Assoc& a) {
  return doc.paths().depth(a.path);
}

/// \brief Lifts an association one edge toward the root: an attribute
/// arc collapses onto its owner element; otherwise the node steps to its
/// parent. Precondition: depth > 1 or the assoc is an attribute arc.
inline Assoc Lift(const StoredDocument& doc, const Assoc& a) {
  if (doc.paths().kind(a.path) == model::StepKind::kAttribute) {
    return Assoc{doc.paths().parent(a.path), a.node};
  }
  return Assoc{doc.paths().parent(a.path), doc.parent(a.node)};
}

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_INPUT_SET_H_
