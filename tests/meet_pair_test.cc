// Unit + property tests for the pairwise meet (paper Fig. 3), distance,
// d-meet, and the LCA baselines.

#include <gtest/gtest.h>

#include "core/lca_baselines.h"
#include "core/meet_pair.h"
#include "data/paper_example.h"
#include "data/random_tree.h"
#include "model/shredder.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace meetxml {
namespace core {
namespace {

using meetxml::testing::FindCdataNode;
using meetxml::testing::FindElement;
using meetxml::testing::MustShred;
using meetxml::testing::ReferenceDistance;
using meetxml::testing::ReferenceLca;

// ---- Paper §3.1 worked examples --------------------------------------

TEST(MeetPair, BenAndBitMeetAtAuthor) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  auto meet = MeetPair(doc, ben, bit);
  ASSERT_TRUE(meet.ok()) << meet.status();
  EXPECT_EQ(doc.tag(meet->meet), "author");
  // cdata -> firstname -> author (2 up) and cdata -> lastname -> author.
  EXPECT_EQ(meet->joins, 4);
}

TEST(MeetPair, SameNodeMeetsAtItself) {
  // "Bob" and "Byte" both match the same cdata association; the meet is
  // the cdata node itself.
  auto doc = MustShred(data::PaperExampleXml());
  Oid bob_byte = FindCdataNode(doc, "Bob Byte");
  auto meet = MeetPair(doc, bob_byte, bob_byte);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(meet->meet, bob_byte);
  EXPECT_EQ(meet->joins, 0);
}

TEST(MeetPair, BitAnd1999MeetAtArticle) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid bit = FindCdataNode(doc, "Bit");
  // The first article's year cdata (Ben Bit's article is first).
  Oid article = FindElement(doc, "article", 0);
  Oid year_cdata = bat::kInvalidOid;
  for (Oid kid : doc.children(article)) {
    if (doc.tag(kid) == "year") {
      year_cdata = doc.children(kid).front();
    }
  }
  ASSERT_NE(year_cdata, bat::kInvalidOid);

  auto meet = MeetPair(doc, bit, year_cdata);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(meet->meet, article);
  EXPECT_EQ(doc.tag(meet->meet), "article");
}

TEST(MeetPair, RootIsMeetOfNodesFromDifferentArticles) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid bit = FindCdataNode(doc, "Bit");
  Oid bob = FindCdataNode(doc, "Bob Byte");
  auto meet = MeetPair(doc, bit, bob);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(doc.tag(meet->meet), "institute");
}

TEST(MeetPair, AncestorDescendantMeetsAtAncestor) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid article = FindElement(doc, "article");
  Oid bit = FindCdataNode(doc, "Bit");
  auto meet = MeetPair(doc, article, bit);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(meet->meet, article);
  EXPECT_EQ(meet->joins, 3);  // cdata -> lastname -> author -> article
}

TEST(MeetPair, IsCommutative) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  auto ab = MeetPair(doc, ben, bit);
  auto ba = MeetPair(doc, bit, ben);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_EQ(ab->meet, ba->meet);
  EXPECT_EQ(ab->joins, ba->joins);
}

// ---- Attribute associations ------------------------------------------

TEST(MeetPair, AttributeAssociationMeetsOwner) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid article = FindElement(doc, "article");
  PathId key_path = doc.paths().Find(
      doc.path(article), model::StepKind::kAttribute, "key");
  ASSERT_NE(key_path, bat::kInvalidPathId);

  Assoc key_assoc{key_path, article};
  Oid bit = FindCdataNode(doc, "Bit");
  auto meet = MeetPair(doc, key_assoc, AssocForNode(doc, bit));
  ASSERT_TRUE(meet.ok()) << meet.status();
  EXPECT_EQ(meet->meet, article);
  // @key arc (1) + cdata->lastname->author->article (3).
  EXPECT_EQ(meet->joins, 4);
}

TEST(MeetPair, TwoAttributesOfOneElementMeetAtElement) {
  auto doc = MustShred("<a x=\"1\" y=\"2\"/>");
  PathId x = doc.paths().Find(doc.path(0), model::StepKind::kAttribute,
                              "x");
  PathId y = doc.paths().Find(doc.path(0), model::StepKind::kAttribute,
                              "y");
  auto meet = MeetPair(doc, Assoc{x, 0}, Assoc{y, 0});
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(meet->meet, 0u);
  EXPECT_EQ(meet->joins, 2);
}

// ---- Validation -------------------------------------------------------

TEST(MeetPair, RejectsUnknownOid) {
  auto doc = MustShred("<a/>");
  EXPECT_FALSE(MeetPair(doc, Oid{5}, Oid{0}).ok());
}

TEST(MeetPair, RejectsMismatchedAssocPath) {
  auto doc = MustShred("<a><b/></a>");
  Assoc wrong{doc.path(0), 1};  // node 1 does not have root's path
  auto result = MeetPair(doc, wrong, AssocForNode(doc, 0));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

// ---- Distance and d-meet ----------------------------------------------

TEST(Distance, MatchesJoinsAndEdges) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  auto dist = Distance(doc, ben, bit);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, 4);
  EXPECT_EQ(*dist, ReferenceDistance(doc, ben, bit));
}

TEST(DMeet, BlocksFarPairsAndPassesNearOnes) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  auto blocked = MeetPairWithin(doc, AssocForNode(doc, ben),
                                AssocForNode(doc, bit), 3);
  ASSERT_TRUE(blocked.ok());
  EXPECT_FALSE(blocked->has_value());

  auto passed = MeetPairWithin(doc, AssocForNode(doc, ben),
                               AssocForNode(doc, bit), 4);
  ASSERT_TRUE(passed.ok());
  ASSERT_TRUE(passed->has_value());
  EXPECT_EQ(doc.tag((*passed)->meet), "author");
}

TEST(DMeet, RejectsNegativeDistance) {
  auto doc = MustShred("<a><b/></a>");
  auto result = MeetPairWithin(doc, AssocForNode(doc, 0),
                               AssocForNode(doc, 1), -1);
  EXPECT_FALSE(result.ok());
}

// ---- Baselines ---------------------------------------------------------

TEST(NaiveLca, AgreesWithMeetOnExample) {
  auto doc = MustShred(data::PaperExampleXml());
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  auto naive = NaiveLca(doc, ben, bit);
  auto meet = MeetPair(doc, ben, bit);
  ASSERT_TRUE(naive.ok() && meet.ok());
  EXPECT_EQ(*naive, meet->meet);
}

TEST(EulerRmqLca, AgreesWithMeetOnExample) {
  auto doc = MustShred(data::PaperExampleXml());
  auto lca = EulerRmqLca::Build(doc);
  ASSERT_TRUE(lca.ok()) << lca.status();
  Oid ben = FindCdataNode(doc, "Ben");
  Oid bit = FindCdataNode(doc, "Bit");
  auto fast = lca->Query(ben, bit);
  auto meet = MeetPair(doc, ben, bit);
  ASSERT_TRUE(fast.ok() && meet.ok());
  EXPECT_EQ(*fast, meet->meet);
  EXPECT_GT(lca->MemoryBytes(), 0u);
}

// ---- Property: all four strategies agree on random trees --------------

class LcaAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LcaAgreement, AllStrategiesAgreeOnRandomPairs) {
  data::RandomTreeOptions options;
  options.seed = GetParam();
  options.target_elements = 300;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;

  auto rmq = EulerRmqLca::Build(doc);
  ASSERT_TRUE(rmq.ok());

  util::Rng rng(GetParam() * 977 + 3);
  for (int trial = 0; trial < 200; ++trial) {
    Oid a = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    Oid b = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    Oid expected = ReferenceLca(doc, a, b);

    auto meet = MeetPair(doc, a, b);
    ASSERT_TRUE(meet.ok());
    EXPECT_EQ(meet->meet, expected) << "pair (" << a << ", " << b << ")";
    EXPECT_EQ(meet->joins, ReferenceDistance(doc, a, b));

    auto naive = NaiveLca(doc, a, b);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(*naive, expected);

    auto fast = rmq->Query(a, b);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*fast, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcaAgreement,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---- Property: metric axioms of the distance --------------------------

class DistanceMetric : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistanceMetric, TriangleInequalityAndSymmetry) {
  data::RandomTreeOptions options;
  options.seed = GetParam() + 1000;
  options.target_elements = 120;
  auto generated = data::GenerateRandomTree(options);
  ASSERT_TRUE(generated.ok());
  auto shredded = model::Shred(*generated);
  ASSERT_TRUE(shredded.ok());
  const model::StoredDocument& doc = *shredded;

  util::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    Oid a = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    Oid b = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    Oid c = static_cast<Oid>(rng.NextBelow(doc.node_count()));
    int ab = Distance(doc, a, b).ValueOrDie();
    int ba = Distance(doc, b, a).ValueOrDie();
    int bc = Distance(doc, b, c).ValueOrDie();
    int ac = Distance(doc, a, c).ValueOrDie();
    EXPECT_EQ(ab, ba);
    EXPECT_LE(ac, ab + bc);
    EXPECT_EQ(Distance(doc, a, a).ValueOrDie(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceMetric,
                         ::testing::Values(7, 17, 27));

}  // namespace
}  // namespace core
}  // namespace meetxml
