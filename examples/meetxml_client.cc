// meetxml_client: a line client for meetxmld.
//
// Run:  ./meetxml_client <port> [scope] [query]
//
// With a query on the command line it runs once and exits; without
// one it reads queries from stdin (one per line, scope fixed by
// argv[2], default "*") — an interactive nearest-concept session
// against a running daemon.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "server/protocol.h"
#include "util/net.h"

using namespace meetxml;  // example code; the library itself never does this

namespace {

util::Result<server::Response> Roundtrip(int fd,
                                         const server::Request& request) {
  MEETXML_RETURN_NOT_OK(util::WriteFull(
      fd, server::EncodeFrame(server::EncodeRequest(request))));
  char prefix[4];
  MEETXML_RETURN_NOT_OK(util::ReadFull(fd, prefix, sizeof(prefix)));
  uint32_t length = server::DecodeFrameLength(prefix);
  if (length == 0 || length > server::kMaxFrameBytes) {
    return util::Status::Internal("bad response frame length ", length);
  }
  std::string payload(length, '\0');
  MEETXML_RETURN_NOT_OK(util::ReadFull(fd, payload.data(), length));
  return server::DecodeResponse(payload);
}

int RunQuery(int fd, const std::string& scope, const std::string& query) {
  server::Request request;
  request.opcode = server::Opcode::kQuery;
  request.scope = scope;
  request.query = query;
  auto response = Roundtrip(fd, request);
  if (!response.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (!response->ok) {
    std::fprintf(stderr, "query error: %s\n", response->message.c_str());
    return 1;
  }
  std::printf("%s", response->table.c_str());
  if (response->truncated) {
    std::printf("... (truncated at %llu rows; add LIMIT)\n",
                static_cast<unsigned long long>(response->row_count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <port> [scope] [query]\n", argv[0]);
    return 2;
  }
  uint16_t port = static_cast<uint16_t>(std::stoi(argv[1]));
  std::string scope = argc > 2 ? argv[2] : "*";

  auto fd = util::ConnectTcp("localhost", port);
  MEETXML_CHECK_OK(fd.status());

  server::Request hello;
  hello.opcode = server::Opcode::kHello;
  hello.protocol_version = server::kProtocolVersion;
  auto greeted = Roundtrip(*fd, hello);
  MEETXML_CHECK_OK(greeted.status());
  if (!greeted->ok) {
    std::fprintf(stderr, "refused: %s\n", greeted->message.c_str());
    util::CloseSocket(*fd);
    return 1;
  }

  int exit_code = 0;
  if (argc > 3) {
    exit_code = RunQuery(*fd, scope, argv[3]);
  } else {
    std::fprintf(stderr, "%s session %llu, scope %s — one query per "
                 "line, Ctrl-D to quit\n",
                 greeted->banner.c_str(),
                 static_cast<unsigned long long>(greeted->session_id),
                 scope.c_str());
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      RunQuery(*fd, scope, line);
    }
  }

  server::Request bye;
  bye.opcode = server::Opcode::kBye;
  Roundtrip(*fd, bye).ok();
  util::CloseSocket(*fd);
  return exit_code;
}
