#include "core/meet_set.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "bat/ops.h"

namespace meetxml {
namespace core {

using bat::OidOidBat;
using util::Result;
using util::Status;

namespace {

Status ValidateSet(const StoredDocument& doc, const AssocSet& set,
                   const char* which) {
  if (set.path >= doc.paths().size()) {
    return Status::NotFound("meet_s input ", which, ": unknown path id ",
                            set.path);
  }
  bool is_attr =
      doc.paths().kind(set.path) == model::StepKind::kAttribute;
  PathId node_path =
      is_attr ? doc.paths().parent(set.path) : set.path;
  for (Oid node : set.nodes) {
    if (node >= doc.node_count()) {
      return Status::NotFound("meet_s input ", which, ": no node with OID ",
                              node);
    }
    if (doc.path(node) != node_path) {
      return Status::InvalidArgument(
          "meet_s input ", which,
          ": node OID ", node,
          " does not have the set's uniform path (sets must be "
          "uniformly typed, paper Fig. 4)");
    }
  }
  return Status::OK();
}

// Seeds the (current, origin) relation: mirror of the deduplicated node
// set. For attribute paths the current node is the owning element.
OidOidBat SeedRelation(const std::vector<Oid>& nodes) {
  std::vector<Oid> unique = nodes;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  return bat::MirrorValues(unique);
}

// One lift step: joins the relation with the edge BAT of `path`
// (paper's parent() shortcut). Attribute arcs collapse onto the owner
// element, which the current relation already references, so only the
// path changes.
OidOidBat LiftRelation(const StoredDocument& doc, OidOidBat relation,
                       PathId path) {
  if (doc.paths().kind(path) == model::StepKind::kAttribute) {
    return relation;
  }
  // edges: (parent, child); relation: (current == child, origin).
  // join(edges, relation) matches edges.tail == relation.head and yields
  // (parent, origin).
  return bat::Join(doc.EdgesAt(path), relation);
}

}  // namespace

Result<std::vector<SetMeet>> MeetSet(const StoredDocument& doc,
                                     const AssocSet& left,
                                     const AssocSet& right,
                                     const MeetOptions& options,
                                     MeetSetStats* stats) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  MEETXML_RETURN_NOT_OK(ValidateSet(doc, left, "left"));
  MEETXML_RETURN_NOT_OK(ValidateSet(doc, right, "right"));

  MeetSetStats local_stats;
  MeetSetStats* st = stats != nullptr ? stats : &local_stats;
  *st = MeetSetStats{};

  OidOidBat sigma_l = SeedRelation(left.nodes);
  OidOidBat sigma_r = SeedRelation(right.nodes);
  PathId path_l = left.path;
  PathId path_r = right.path;
  const uint32_t depth_l0 = doc.paths().depth(path_l);
  const uint32_t depth_r0 = doc.paths().depth(path_r);

  std::vector<SetMeet> results;
  bool truncated = false;

  while (!sigma_l.empty() && !sigma_r.empty() && !truncated) {
    ++st->rounds;
    st->pairs_peak =
        std::max(st->pairs_peak, sigma_l.size() + sigma_r.size());

    uint32_t dl = doc.paths().depth(path_l);
    uint32_t dr = doc.paths().depth(path_r);

    if (path_l == path_r) {
      std::unordered_set<Oid> meets = bat::IntersectHeads(sigma_l, sigma_r);
      if (!meets.empty()) {
        // Group witnesses per meet node, ordered by meet OID for
        // deterministic output.
        std::map<Oid, SetMeet> grouped;
        for (size_t row = 0; row < sigma_l.size(); ++row) {
          if (!meets.count(sigma_l.head(row))) continue;
          grouped[sigma_l.head(row)].left_witnesses.push_back(
              sigma_l.tail(row));
        }
        for (size_t row = 0; row < sigma_r.size(); ++row) {
          if (!meets.count(sigma_r.head(row))) continue;
          grouped[sigma_r.head(row)].right_witnesses.push_back(
              sigma_r.tail(row));
        }
        // The meet node sits at the current (common) path depth. For an
        // attribute path the reported node is the owner element, one
        // level above the arc.
        uint32_t dm = dl;
        if (doc.paths().kind(path_l) == model::StepKind::kAttribute) {
          dm -= 1;
        }
        int witness_distance = static_cast<int>(depth_l0 - dm) +
                               static_cast<int>(depth_r0 - dm);
        PathId meet_path =
            doc.paths().kind(path_l) == model::StepKind::kAttribute
                ? doc.paths().parent(path_l)
                : path_l;
        for (auto& [meet_oid, meet] : grouped) {
          meet.meet = meet_oid;
          meet.witness_distance = witness_distance;
          std::sort(meet.left_witnesses.begin(), meet.left_witnesses.end());
          std::sort(meet.right_witnesses.begin(),
                    meet.right_witnesses.end());
          // Minimality consumes the pairs regardless; the restriction
          // (meet_X / d-meet) only filters what is reported (paper §4).
          bool report = options.PathAllowed(meet_path) &&
                        witness_distance <= options.max_distance;
          if (report) {
            results.push_back(std::move(meet));
            if (options.max_results > 0 &&
                results.size() >= options.max_results) {
              truncated = true;
              break;
            }
          }
        }
        sigma_l = bat::AntijoinKeys(sigma_l, meets);
        sigma_r = bat::AntijoinKeys(sigma_r, meets);
        if (truncated || sigma_l.empty() || sigma_r.empty()) break;
      }
      if (dl <= 1) break;  // both relations sit at the root path
    }

    // Steering: lift the deeper side; on equal depth lift both (the
    // remaining pairs on a common path are distinct nodes whose meet is
    // strictly higher).
    if (dl > dr) {
      sigma_l = LiftRelation(doc, std::move(sigma_l), path_l);
      path_l = doc.paths().parent(path_l);
      ++st->joins;
    } else if (dr > dl) {
      sigma_r = LiftRelation(doc, std::move(sigma_r), path_r);
      path_r = doc.paths().parent(path_r);
      ++st->joins;
    } else {
      sigma_l = LiftRelation(doc, std::move(sigma_l), path_l);
      path_l = doc.paths().parent(path_l);
      sigma_r = LiftRelation(doc, std::move(sigma_r), path_r);
      path_r = doc.paths().parent(path_r);
      st->joins += 2;
    }
  }

  return results;
}

}  // namespace core
}  // namespace meetxml
