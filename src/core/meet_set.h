// Set-at-a-time meet over two uniformly-typed association sets — the
// meet_s algorithm of paper §3.2/Figure 4.
//
// The two input sets are represented as (current, origin) BAT relations
// seeded with mirror(S). Each round intersects the current heads — every
// common head is a *minimal* meet, is emitted, and its pairs are removed
// from both relations — then lifts the deeper relation one level by
// joining it with the edge BAT of its path (the paper's
// parent(Σ1, Σ2) = join shortcut). Because every set keeps a single
// uniform path, the depth comparison steers which side joins, and the
// result is invariant of input order.

#ifndef MEETXML_CORE_MEET_SET_H_
#define MEETXML_CORE_MEET_SET_H_

#include <vector>

#include "core/input_set.h"
#include "core/restrictions.h"
#include "util/result.h"

namespace meetxml {
namespace core {

/// \brief One meet produced by the set-at-a-time algorithm.
struct SetMeet {
  /// The nearest-concept node.
  Oid meet;
  /// Input nodes from the left set that this meet consumed.
  std::vector<Oid> left_witnesses;
  /// Input nodes from the right set that this meet consumed.
  std::vector<Oid> right_witnesses;
  /// Edges between the meet and its deepest left/right witnesses summed —
  /// the d of d-meet for this result.
  int witness_distance;
};

/// \brief Execution counters, exposed for the benchmarks.
struct MeetSetStats {
  int rounds = 0;        // loop iterations
  int joins = 0;         // edge-BAT joins executed (lift operations)
  size_t pairs_peak = 0; // max total (current, origin) pairs alive
};

/// \brief meet_s(S1, S2): all minimal meets between two association sets.
///
/// Both sets must be uniformly typed (a single path each). Duplicate
/// input nodes are deduplicated. Results are ordered by meet OID.
util::Result<std::vector<SetMeet>> MeetSet(const StoredDocument& doc,
                                           const AssocSet& left,
                                           const AssocSet& right,
                                           const MeetOptions& options = {},
                                           MeetSetStats* stats = nullptr);

}  // namespace core
}  // namespace meetxml

#endif  // MEETXML_CORE_MEET_SET_H_
