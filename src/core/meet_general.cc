#include "core/meet_general.h"

#include <algorithm>
#include <unordered_map>

namespace meetxml {
namespace core {

using util::Result;
using util::Status;

namespace {

struct Witness {
  Assoc assoc;
  size_t source;
};

// A live input item: its current roll-up position plus the witnesses it
// carries (more than one only after duplicate-association merging).
// Witness lists are fixed at seed time — items never gain witnesses as
// they lift — so each item holds a span into one shared arena instead
// of owning a vector: items stay trivially copyable and seeding does
// no per-item allocation.
struct Item {
  Oid cur;
  uint32_t wid_begin;
  uint32_t wid_count;
};

Status ValidateInput(const StoredDocument& doc, const AssocSet& set,
                     size_t index) {
  if (set.path >= doc.paths().size()) {
    return Status::NotFound("meet input set ", index, ": unknown path id ",
                            set.path);
  }
  bool is_attr =
      doc.paths().kind(set.path) == model::StepKind::kAttribute;
  PathId node_path = is_attr ? doc.paths().parent(set.path) : set.path;
  for (Oid node : set.nodes) {
    if (node >= doc.node_count()) {
      return Status::NotFound("meet input set ", index,
                              ": no node with OID ", node);
    }
    if (doc.path(node) != node_path) {
      return Status::InvalidArgument(
          "meet input set ", index, ": node OID ", node,
          " does not match the set's path (sets must be uniformly typed)");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<GeneralMeet>> MeetGeneral(
    const StoredDocument& doc, const std::vector<AssocSet>& inputs,
    const MeetOptions& options, MeetGeneralStats* stats) {
  if (!doc.finalized()) {
    return Status::InvalidArgument("document is not finalized");
  }
  MeetGeneralStats local_stats;
  MeetGeneralStats* st = stats != nullptr ? stats : &local_stats;
  *st = MeetGeneralStats{};

  const model::PathSummary& paths = doc.paths();

  // Seed: one item per distinct association; duplicates across (or
  // within) sets merge their witnesses into one item. Sets are
  // uniformly typed, so merging is per path: concatenate every set
  // bound to the path as (node, witness) pairs, stable-sort by node,
  // and fold equal-node runs into one item — witness order within an
  // item stays input order, exactly as hash-based merging produced,
  // at a fraction of the constant factor.
  std::vector<Witness> witnesses;
  std::vector<uint32_t> wid_arena;
  std::vector<std::vector<Item>> buckets(paths.size());
  {
    std::vector<std::pair<PathId, std::vector<std::pair<Oid, uint32_t>>>>
        per_path;
    for (size_t i = 0; i < inputs.size(); ++i) {
      MEETXML_RETURN_NOT_OK(ValidateInput(doc, inputs[i], i));
      const AssocSet& set = inputs[i];
      std::vector<std::pair<Oid, uint32_t>>* pairs = nullptr;
      for (auto& entry : per_path) {
        if (entry.first == set.path) {
          pairs = &entry.second;
          break;
        }
      }
      if (pairs == nullptr) {
        per_path.emplace_back(set.path,
                              std::vector<std::pair<Oid, uint32_t>>());
        pairs = &per_path.back().second;
      }
      pairs->reserve(pairs->size() + set.nodes.size());
      for (Oid node : set.nodes) {
        uint32_t wid = static_cast<uint32_t>(witnesses.size());
        witnesses.push_back(Witness{Assoc{set.path, node}, i});
        pairs->emplace_back(node, wid);
      }
    }
    for (auto& [path, pairs] : per_path) {
      std::stable_sort(pairs.begin(), pairs.end(),
                       [](const std::pair<Oid, uint32_t>& a,
                          const std::pair<Oid, uint32_t>& b) {
                         return a.first < b.first;
                       });
      std::vector<Item>& bucket = buckets[path];
      bucket.reserve(pairs.size());
      wid_arena.reserve(wid_arena.size() + pairs.size());
      for (size_t i = 0; i < pairs.size();) {
        Item item;
        item.cur = pairs[i].first;
        item.wid_begin = static_cast<uint32_t>(wid_arena.size());
        do {
          wid_arena.push_back(pairs[i].second);
          ++i;
        } while (i < pairs.size() && pairs[i].first == item.cur);
        item.wid_count =
            static_cast<uint32_t>(wid_arena.size()) - item.wid_begin;
        bucket.push_back(item);
        ++st->items_seeded;
      }
    }
  }

  std::vector<GeneralMeet> results;

  // Bounded mode: keep the k best candidates in a max-heap ordered by
  // the final ranking key (witness_distance, meet OID). The key is a
  // total order — meet nodes are unique within a run — so heap-top-k is
  // byte-identical to sort-then-resize, at O(k) memory.
  const bool bounded = options.max_results > 0 && !options.materialize_all;
  auto rank_before = [](const GeneralMeet& a, const GeneralMeet& b) {
    if (a.witness_distance != b.witness_distance) {
      return a.witness_distance < b.witness_distance;
    }
    return a.meet < b.meet;
  };

  // Roll up the schema tree children-before-parents. Path ids are
  // interned parents-first, so descending id order visits every path
  // after all of its children.
  std::vector<uint8_t> lifted_into(paths.size(), 0);
  for (size_t p = paths.size(); p-- > 0;) {
    PathId pid = static_cast<PathId>(p);
    std::vector<Item> bucket = std::move(buckets[pid]);
    if (bucket.empty()) continue;
    ++st->paths_touched;

    const bool is_attr = paths.kind(pid) == model::StepKind::kAttribute;
    const uint32_t node_depth =
        is_attr ? paths.depth(pid) - 1 : paths.depth(pid);

    auto process_group = [&](Oid node, const size_t* item_indices,
                             size_t group_size) {
      // A node is a meet when >= 2 items converge on it — or when a
      // single seeded item already carries >= 2 witnesses (the same
      // association matched several search terms, e.g. "Bob" and
      // "Byte" hitting one cdata: the meet is that node itself).
      bool merged_duplicate =
          group_size == 1 && bucket[item_indices[0]].wid_count >= 2;
      if (group_size >= 2 || merged_duplicate) {
        // `node` is the lowest common ancestor of at least two input
        // items: a minimal meet. Consume the items. The ranking key
        // needs only the two largest witness distances, so compute it
        // first and materialize the witness vector only for candidates
        // that survive the bound checks below.
        int largest = 0;
        int second = 0;
        for (size_t g = 0; g < group_size; ++g) {
          const Item& item = bucket[item_indices[g]];
          for (uint32_t o = 0; o < item.wid_count; ++o) {
            const Witness& w = witnesses[wid_arena[item.wid_begin + o]];
            // A witness seeded in this very bucket never traversed an
            // edge (distance 0); a lifted witness is as many edges away
            // as its association depth exceeds the meet node's depth.
            int dist = w.assoc.path == pid
                           ? 0
                           : static_cast<int>(AssocDepth(doc, w.assoc)) -
                                 static_cast<int>(node_depth);
            if (dist >= largest) {
              second = largest;
              largest = dist;
            } else if (dist > second) {
              second = dist;
            }
          }
        }
        int witness_distance = largest + second;
        PathId meet_path = doc.path(node);
        bool report = options.PathAllowed(meet_path) &&
                      witness_distance <= options.max_distance;
        if (report) {
          ++st->meets_found;
          bool keep = true;
          // Strictly-worse pruning only: a candidate tied with the
          // shared bound may still win its tie-break, so `>` not `>=`.
          if (options.shared_max_distance != nullptr &&
              witness_distance > options.shared_max_distance->load(
                                     std::memory_order_relaxed)) {
            keep = false;
          }
          if (keep && bounded && results.size() >= options.max_results) {
            const GeneralMeet& worst = results.front();
            if (witness_distance > worst.witness_distance ||
                (witness_distance == worst.witness_distance &&
                 node > worst.meet)) {
              keep = false;
            }
          }
          if (!keep) {
            ++st->meets_pruned;
            return;
          }
          ++st->meets_materialized;
          GeneralMeet meet;
          meet.meet = node;
          meet.meet_path = meet_path;
          meet.witness_distance = witness_distance;
          for (size_t g = 0; g < group_size; ++g) {
            const Item& item = bucket[item_indices[g]];
            for (uint32_t o = 0; o < item.wid_count; ++o) {
              const Witness& w = witnesses[wid_arena[item.wid_begin + o]];
              int dist = w.assoc.path == pid
                             ? 0
                             : static_cast<int>(AssocDepth(doc, w.assoc)) -
                                   static_cast<int>(node_depth);
              meet.witnesses.push_back(MeetWitness{w.assoc, w.source, dist});
            }
          }
          std::sort(meet.witnesses.begin(), meet.witnesses.end(),
                    [](const MeetWitness& a, const MeetWitness& b) {
                      if (a.assoc.node != b.assoc.node) {
                        return a.assoc.node < b.assoc.node;
                      }
                      return a.assoc.path < b.assoc.path;
                    });
          if (bounded) {
            if (results.size() >= options.max_results) {
              std::pop_heap(results.begin(), results.end(), rank_before);
              results.pop_back();
            }
            results.push_back(std::move(meet));
            std::push_heap(results.begin(), results.end(), rank_before);
          } else {
            results.push_back(std::move(meet));
          }
        }
        return;
      }

      // Lone item: climb one edge, unless already at a root-level
      // element path (then it produces no meet and is dropped).
      //
      // An item whose distance already exceeds max_distance must keep
      // climbing even though it can never appear in a reported meet
      // (its distance only grows, so every meet it joins fails the
      // span check above). At that unreported meet it still CONSUMES
      // its partners — the paper's minimality rule — and dropping it
      // early would let those partners climb on and form extra meets
      // higher in the tree, changing the answer of distance-bounded
      // queries. The report check filters the over-distance meet
      // itself, so no per-item flag is needed.
      size_t idx = item_indices[0];
      PathId parent_path = paths.parent(pid);
      if (parent_path == bat::kInvalidPathId) return;
      Item lifted = std::move(bucket[idx]);
      if (!is_attr) lifted.cur = doc.parent(lifted.cur);
      buckets[parent_path].push_back(std::move(lifted));
      lifted_into[parent_path] = 1;
      ++st->lifts;
    };

    if (!lifted_into[pid]) {
      // No lifts landed here, so the bucket holds only seeds — unique
      // by construction (the per-path sort-and-fold merged duplicate
      // associations into single items at seed time) — and every
      // item is its own group. Skipping the hash grouping below is a
      // large constant-factor win for leaf paths with thousands of
      // associations.
      for (size_t i = 0; i < bucket.size(); ++i) {
        process_group(bucket[i].cur, &i, 1);
      }
    } else {
      // Group items by current node.
      std::unordered_map<Oid, std::vector<size_t>> by_node;
      by_node.reserve(bucket.size());
      for (size_t i = 0; i < bucket.size(); ++i) {
        by_node[bucket[i].cur].push_back(i);
      }
      for (auto& [node, item_indices] : by_node) {
        process_group(node, item_indices.data(), item_indices.size());
      }
    }
  }

  // Rank by the paper's heuristic: fewest joins (tightest witness span)
  // first; meet OID breaks ties deterministically. A bounded run holds
  // exactly the top k in heap order and just needs the final sort.
  std::sort(results.begin(), results.end(), rank_before);
  if (options.max_results > 0 && results.size() > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

Result<std::vector<GeneralMeet>> MeetGeneralNodes(
    const StoredDocument& doc, const std::vector<Oid>& nodes,
    const MeetOptions& options) {
  std::unordered_map<PathId, AssocSet> grouped;
  for (Oid node : nodes) {
    if (node >= doc.node_count()) {
      return Status::NotFound("no node with OID ", node);
    }
    PathId path = doc.path(node);
    AssocSet& set = grouped[path];
    set.path = path;
    set.nodes.push_back(node);
  }
  std::vector<AssocSet> inputs;
  inputs.reserve(grouped.size());
  for (auto& [path, set] : grouped) inputs.push_back(std::move(set));
  // Deterministic input order (the algorithm is order-invariant, but
  // keep the witness `source` indices stable).
  std::sort(inputs.begin(), inputs.end(),
            [](const AssocSet& a, const AssocSet& b) {
              return a.path < b.path;
            });
  return MeetGeneral(doc, inputs, options);
}

}  // namespace core
}  // namespace meetxml
