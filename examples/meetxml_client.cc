// meetxml_client: a line client for meetxmld.
//
// Run:  ./meetxml_client <port> [scope] [query]
//       ./meetxml_client <port> stats
//       ./meetxml_client <port> dump
//
// With a query on the command line it runs once and exits; without
// one it reads queries from stdin (one per line, scope fixed by
// argv[2], default "*") — an interactive nearest-concept session
// against a running daemon.
//
// `stats` prints the protocol-v2 STATS body: the legacy counters plus
// a latency table (count / sum / p50 / p90 / p99 in microseconds) for
// every histogram the server tracks. `dump` prints the DUMP opcode's
// Prometheus-style exposition and query-log tail verbatim — the live
// introspection surface for a serving daemon.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "server/protocol.h"
#include "util/net.h"

using namespace meetxml;  // example code; the library itself never does this

namespace {

util::Result<server::Response> Roundtrip(int fd,
                                         const server::Request& request) {
  MEETXML_RETURN_NOT_OK(util::WriteFull(
      fd, server::EncodeFrame(server::EncodeRequest(request))));
  char prefix[4];
  MEETXML_RETURN_NOT_OK(util::ReadFull(fd, prefix, sizeof(prefix)));
  uint32_t length = server::DecodeFrameLength(prefix);
  if (length == 0 || length > server::kMaxFrameBytes) {
    return util::Status::Internal("bad response frame length ", length);
  }
  std::string payload(length, '\0');
  MEETXML_RETURN_NOT_OK(util::ReadFull(fd, payload.data(), length));
  return server::DecodeResponse(payload);
}

int RunQuery(int fd, const std::string& scope, const std::string& query) {
  server::Request request;
  request.opcode = server::Opcode::kQuery;
  request.scope = scope;
  request.query = query;
  auto response = Roundtrip(fd, request);
  if (!response.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (!response->ok) {
    std::fprintf(stderr, "query error: %s\n", response->message.c_str());
    return 1;
  }
  std::printf("%s", response->table.c_str());
  if (response->truncated) {
    std::printf("... (truncated at %llu rows; add LIMIT)\n",
                static_cast<unsigned long long>(response->row_count));
  }
  return 0;
}

int RunStats(int fd) {
  server::Request request;
  request.opcode = server::Opcode::kStats;
  auto response = Roundtrip(fd, request);
  if (!response.ok() || !response->ok) {
    std::fprintf(stderr, "stats error: %s\n",
                 response.ok() ? response->message.c_str()
                               : response.status().ToString().c_str());
    return 1;
  }
  const server::StatsBody& stats = response->stats;
  std::printf("queries_served   %llu\n"
              "request_errors   %llu\n"
              "sessions_active  %llu\n"
              "sessions_evicted %llu\n",
              static_cast<unsigned long long>(stats.queries_served),
              static_cast<unsigned long long>(stats.request_errors),
              static_cast<unsigned long long>(stats.sessions_active),
              static_cast<unsigned long long>(stats.sessions_evicted));
  if (stats.version < 2) {
    std::printf("(v1 server: no histogram summaries)\n");
    return 0;
  }
  std::printf("\n%-44s %10s %12s %8s %8s %8s\n", "histogram", "count",
              "sum", "p50", "p90", "p99");
  for (const server::StatsHistogramEntry& entry : stats.histograms) {
    std::printf("%-44s %10llu %12llu %8llu %8llu %8llu\n",
                entry.name.c_str(),
                static_cast<unsigned long long>(entry.count),
                static_cast<unsigned long long>(entry.sum),
                static_cast<unsigned long long>(entry.p50),
                static_cast<unsigned long long>(entry.p90),
                static_cast<unsigned long long>(entry.p99));
  }
  return 0;
}

int RunDump(int fd) {
  server::Request request;
  request.opcode = server::Opcode::kDump;
  auto response = Roundtrip(fd, request);
  if (!response.ok() || !response->ok) {
    std::fprintf(stderr, "dump error: %s\n",
                 response.ok() ? response->message.c_str()
                               : response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", response->dump.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <port> [scope] [query]\n"
                 "       %s <port> stats|dump\n", argv[0], argv[0]);
    return 2;
  }
  uint16_t port = static_cast<uint16_t>(std::stoi(argv[1]));
  std::string scope = argc > 2 ? argv[2] : "*";

  auto fd = util::ConnectTcp("localhost", port);
  MEETXML_CHECK_OK(fd.status());

  server::Request hello;
  hello.opcode = server::Opcode::kHello;
  hello.protocol_version = server::kProtocolVersion;
  auto greeted = Roundtrip(*fd, hello);
  MEETXML_CHECK_OK(greeted.status());
  if (!greeted->ok) {
    std::fprintf(stderr, "refused: %s\n", greeted->message.c_str());
    util::CloseSocket(*fd);
    return 1;
  }

  int exit_code = 0;
  if (argc == 3 && (scope == "stats" || scope == "dump")) {
    exit_code = scope == "stats" ? RunStats(*fd) : RunDump(*fd);
  } else if (argc > 3) {
    exit_code = RunQuery(*fd, scope, argv[3]);
  } else {
    std::fprintf(stderr, "%s session %llu, scope %s — one query per "
                 "line, Ctrl-D to quit\n",
                 greeted->banner.c_str(),
                 static_cast<unsigned long long>(greeted->session_id),
                 scope.c_str());
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      RunQuery(*fd, scope, line);
    }
  }

  server::Request bye;
  bye.opcode = server::Opcode::kBye;
  Roundtrip(*fd, bye).ok();
  util::CloseSocket(*fd);
  return exit_code;
}
