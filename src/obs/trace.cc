#include "obs/trace.h"

#include <utility>

namespace meetxml {
namespace obs {

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kRoute: return "route";
    case Stage::kDecode: return "decode";
    case Stage::kIndexBuild: return "index_build";
    case Stage::kExecute: return "execute";
    case Stage::kMerge: return "merge";
  }
  return "unknown";
}

uint64_t QueryTrace::TotalStageUs() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kStageCount; ++i) {
    total += stage_us_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void QueryTrace::SetDocs(const std::vector<std::string>& names) {
  docs_.clear();
  docs_.resize(names.size());
  for (size_t i = 0; i < names.size(); ++i) docs_[i].name = names[i];
}

uint64_t TraceSpan::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  if (trace_ == nullptr) return 0;
  uint64_t now = trace_->Now();
  elapsed_ = now >= start_ ? now - start_ : 0;
  trace_->Add(stage_, elapsed_);
  if (also_ != nullptr) *also_ += elapsed_;
  return elapsed_;
}

void QueryLog::Push(QueryLogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_pushed_;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<QueryLogEntry> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryLogEntry>(entries_.begin(), entries_.end());
}

uint64_t QueryLog::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pushed_;
}

void RecordStageHistograms(MetricsRegistry* registry,
                           const QueryTrace& trace, uint64_t rows) {
  if (registry == nullptr) return;
  auto stage_histogram = [registry](Stage stage) -> Histogram& {
    std::string labels = "stage=\"";
    labels += StageName(stage);
    labels += '"';
    return registry->histogram("meetxml_query_stage_us", labels);
  };
  // Whole-query stages: one sample each.
  stage_histogram(Stage::kParse).Record(trace.stage_us(Stage::kParse));
  stage_histogram(Stage::kRoute).Record(trace.stage_us(Stage::kRoute));
  stage_histogram(Stage::kMerge).Record(trace.stage_us(Stage::kMerge));
  // Per-document stages: one sample per routed document; decode and
  // index build only when they actually happened (they are first-touch
  // events — zero-padding them would drown the lazy-build cost the
  // series exists to surface).
  for (const DocTrace& doc : trace.docs()) {
    stage_histogram(Stage::kExecute).Record(doc.execute_us);
    if (doc.decode_us > 0) {
      stage_histogram(Stage::kDecode).Record(doc.decode_us);
    }
    if (doc.index_build_us > 0) {
      stage_histogram(Stage::kIndexBuild).Record(doc.index_build_us);
    }
  }
  registry->counter("meetxml_query_rows_total").Add(rows);
}

}  // namespace obs
}  // namespace meetxml
