// Read-only memory-mapped files for the image loaders.
//
// Opening a multi-hundred-megabyte store image used to mean reading the
// whole file into a std::string before the first section checksum ran.
// MmapFile maps the file instead: the loader decodes straight out of
// the page cache, pages fault in as the section scan touches them, and
// the copy (plus its transient doubling of peak RSS) disappears. On
// platforms without mmap — or when mapping fails for any reason — the
// wrapper silently falls back to the buffered read, so callers are
// portable without caring which path they got.
//
// The view returned by bytes() is valid for the lifetime of the
// MmapFile object; loaders must finish decoding (copying what they
// keep) before letting it go out of scope.

#ifndef MEETXML_UTIL_MMAP_FILE_H_
#define MEETXML_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "util/result.h"

namespace meetxml {
namespace util {

/// \brief A read-only file, memory-mapped when the platform allows it
/// and buffered into memory otherwise. Move-only RAII: the mapping (or
/// buffer) is released on destruction.
class MmapFile {
 public:
  /// \brief Opens and maps `path`. NotFound when the file cannot be
  /// opened; mapping failures fall back to a buffered read.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile() { Release(); }

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Release();
      mapped_ = other.mapped_;
      mapped_size_ = other.mapped_size_;
      buffer_ = std::move(other.buffer_);
      other.mapped_ = nullptr;
      other.mapped_size_ = 0;
    }
    return *this;
  }

  /// \brief The file's contents; valid while this object lives.
  std::string_view bytes() const {
    if (mapped_ != nullptr) {
      return std::string_view(static_cast<const char*>(mapped_),
                              mapped_size_);
    }
    return buffer_;
  }

  /// \brief True when the contents are served by a mapping rather than
  /// a heap buffer (introspection for tests and diagnostics).
  bool is_mapped() const { return mapped_ != nullptr; }

 private:
  void Release();

  void* mapped_ = nullptr;
  size_t mapped_size_ = 0;
  std::string buffer_;
};

}  // namespace util
}  // namespace meetxml

#endif  // MEETXML_UTIL_MMAP_FILE_H_
