// AB11 — ablation: cold start, image bytes -> hot executor.
//
// The paper's value proposition is "bulk-load DBLP once, query
// interactively ever after", which makes the image-to-executor path
// the product's cold-start latency. This bench isolates the three
// levers this repo pulls on it:
//
// Part 1 — payload codec: the row-oriented DOC0 payload replays one
// framed (path, owner, value) row per string (an allocation and a
// dispatch each), the columnar payloads memcpy whole columns and
// adopt one value arena per path. Expected shape: columnar decodes
// the dblp corpus several times faster (the acceptance bar is >= 3x
// for executor-from-image).
//
// Part 1b — load mode: a copy-mode columnar load still memcpys every
// node column and string blob out of the image; a view-mode (kView)
// load of the aligned DOC2 payload borrows them as spans instead —
// zero per-column copies, bytes_copied == 0 (reported as a counter).
// Expected shape: document decode drops to validation + derived-
// structure cost, and the gap widens with corpus size since the
// copied bytes scale with the corpus while validation is cheap.
//
// Part 2 — catalog fan-out: a multi-document store's sections are
// independently checksummed byte ranges, so Catalog::LoadFromBytes
// decodes them on a thread pool. Expected shape: open time for an
// 8-document catalog scales near-linearly with threads until the
// serial container scan dominates; the view-mode series shows the
// same fan-out with near-zero copied bytes per document.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <utility>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "model/storage_io.h"
#include "query/executor.h"
#include "store/catalog.h"
#include "text/index_io.h"
#include "xml/serializer.h"

using namespace meetxml;

namespace {

// Same corpus shape as ab9 so the two benches stay comparable.
const model::StoredDocument& SharedDoc() {
  static model::StoredDocument* doc = [] {
    data::DblpOptions options;
    options.icde_papers_per_year = 50;
    options.other_papers_per_year = 150;
    options.journal_articles_per_year = 50;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    xml::SerializeOptions serialize_options;
    serialize_options.indent = 1;
    std::string xml_text = xml::Serialize(*generated, serialize_options);
    auto shredded = model::ShredXmlTextStreaming(xml_text);
    MEETXML_CHECK_OK(shredded.status());
    return new model::StoredDocument(std::move(*shredded));
  }();
  return *doc;
}

const std::string& Image(model::DocumentPayloadFormat format) {
  auto make = [](model::DocumentPayloadFormat payload_format) {
    model::SaveOptions options;
    options.payload_format = payload_format;
    auto bytes = model::SaveToBytes(SharedDoc(), options);
    MEETXML_CHECK_OK(bytes.status());
    return new std::string(std::move(*bytes));
  };
  static const std::string* row =
      make(model::DocumentPayloadFormat::kRowOriented);
  static const std::string* unaligned =
      make(model::DocumentPayloadFormat::kColumnarUnaligned);
  static const std::string* columnar =
      make(model::DocumentPayloadFormat::kColumnar);
  switch (format) {
    case model::DocumentPayloadFormat::kRowOriented:
      return *row;
    case model::DocumentPayloadFormat::kColumnarUnaligned:
      return *unaligned;
    case model::DocumentPayloadFormat::kColumnar:
      break;
  }
  return *columnar;
}

// ---- Part 1: payload codec ----------------------------------------------

void ExecutorFromImage(benchmark::State& state,
                       model::DocumentPayloadFormat format) {
  const std::string& bytes = Image(format);
  for (auto _ : state) {
    auto store = text::LoadStoreFromBytes(bytes);
    MEETXML_CHECK_OK(store.status());
    auto executor = query::Executor::Build(store->doc);
    MEETXML_CHECK_OK(executor.status());
    benchmark::DoNotOptimize(executor);
  }
  state.counters["image_MB"] = static_cast<double>(bytes.size()) / 1e6;
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(bytes.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_ExecutorFromImageDoc0(benchmark::State& state) {
  ExecutorFromImage(state, model::DocumentPayloadFormat::kRowOriented);
}
BENCHMARK(BM_ExecutorFromImageDoc0)->Unit(benchmark::kMillisecond);

void BM_ExecutorFromImageDoc1(benchmark::State& state) {
  ExecutorFromImage(state, model::DocumentPayloadFormat::kColumnarUnaligned);
}
BENCHMARK(BM_ExecutorFromImageDoc1)->Unit(benchmark::kMillisecond);

void BM_ExecutorFromImageDoc2(benchmark::State& state) {
  ExecutorFromImage(state, model::DocumentPayloadFormat::kColumnar);
}
BENCHMARK(BM_ExecutorFromImageDoc2)->Unit(benchmark::kMillisecond);

// The pure payload decode, without the executor build on top.
void DocumentDecode(benchmark::State& state,
                    model::DocumentPayloadFormat format) {
  const std::string& bytes = Image(format);
  for (auto _ : state) {
    auto doc = model::LoadFromBytes(bytes);
    MEETXML_CHECK_OK(doc.status());
    benchmark::DoNotOptimize(doc);
  }
}

void BM_DocumentDecodeDoc0(benchmark::State& state) {
  DocumentDecode(state, model::DocumentPayloadFormat::kRowOriented);
}
BENCHMARK(BM_DocumentDecodeDoc0)->Unit(benchmark::kMillisecond);

void BM_DocumentDecodeDoc1(benchmark::State& state) {
  DocumentDecode(state, model::DocumentPayloadFormat::kColumnarUnaligned);
}
BENCHMARK(BM_DocumentDecodeDoc1)->Unit(benchmark::kMillisecond);

// ---- Part 1b: copy vs. view (zero-copy) load mode -----------------------

void DocumentDecodeMode(benchmark::State& state, model::LoadMode mode) {
  const std::string& bytes = Image(model::DocumentPayloadFormat::kColumnar);
  model::LoadStats stats;
  model::LoadOptions options;
  options.mode = mode;
  options.stats = &stats;
  for (auto _ : state) {
    stats = model::LoadStats{};
    auto doc = model::LoadFromBytes(bytes, options);
    MEETXML_CHECK_OK(doc.status());
    benchmark::DoNotOptimize(doc);
  }
  state.counters["copied_MB"] =
      static_cast<double>(stats.bytes_copied) / 1e6;
  state.counters["viewed_MB"] =
      static_cast<double>(stats.bytes_viewed) / 1e6;
}

void BM_DocumentDecodeDoc2Copy(benchmark::State& state) {
  DocumentDecodeMode(state, model::LoadMode::kCopy);
}
BENCHMARK(BM_DocumentDecodeDoc2Copy)->Unit(benchmark::kMillisecond);

void BM_DocumentDecodeDoc2View(benchmark::State& state) {
  DocumentDecodeMode(state, model::LoadMode::kView);
}
BENCHMARK(BM_DocumentDecodeDoc2View)->Unit(benchmark::kMillisecond);

void BM_ExecutorFromImageDoc2View(benchmark::State& state) {
  const std::string& bytes = Image(model::DocumentPayloadFormat::kColumnar);
  model::LoadOptions options;
  options.mode = model::LoadMode::kView;
  for (auto _ : state) {
    auto store = text::LoadStoreFromBytes(bytes, options);
    MEETXML_CHECK_OK(store.status());
    auto executor = query::Executor::Build(store->doc);
    MEETXML_CHECK_OK(executor.status());
    benchmark::DoNotOptimize(executor);
  }
  state.counters["image_MB"] = static_cast<double>(bytes.size()) / 1e6;
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(bytes.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ExecutorFromImageDoc2View)->Unit(benchmark::kMillisecond);

// ---- Part 2: catalog open fan-out ---------------------------------------

// A catalog of `count` mid-sized documents, serialized once per
// (count, format) pair.
const std::string& CatalogImage(int count,
                                model::DocumentPayloadFormat format) {
  static std::map<std::pair<int, int>, std::string>* cache =
      new std::map<std::pair<int, int>, std::string>();
  auto key = std::make_pair(count, static_cast<int>(format));
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  store::Catalog catalog;
  for (int i = 0; i < count; ++i) {
    data::DblpOptions options;
    options.seed = 7 + i;
    options.icde_papers_per_year = 10;
    options.other_papers_per_year = 40;
    options.journal_articles_per_year = 10;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    auto shredded =
        model::ShredXmlTextStreaming(xml::Serialize(*generated));
    MEETXML_CHECK_OK(shredded.status());
    MEETXML_CHECK_OK(
        catalog.Add("dblp_" + std::to_string(i), std::move(*shredded))
            .status());
  }
  auto bytes = catalog.SaveToBytes(format);
  MEETXML_CHECK_OK(bytes.status());
  return (*cache)[key] = std::move(*bytes);
}

// Args: (document count, decode threads).
void BM_CatalogOpen(benchmark::State& state) {
  const std::string& bytes = CatalogImage(
      static_cast<int>(state.range(0)),
      model::DocumentPayloadFormat::kColumnar);
  store::CatalogLoadOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    auto catalog = store::Catalog::LoadFromBytes(bytes, options);
    MEETXML_CHECK_OK(catalog.status());
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["docs"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_CatalogOpen)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

// Zero-copy catalog open: same fan-out, but every DOC2 section is
// decoded as a view-backed document borrowing from the image —
// per-document copied bytes sit at zero (counter) and the open is
// dominated by the directory scan plus validation.
// Args: (document count, decode threads).
void BM_CatalogOpenView(benchmark::State& state) {
  const std::string& bytes = CatalogImage(
      static_cast<int>(state.range(0)),
      model::DocumentPayloadFormat::kColumnar);
  store::CatalogLoadStats stats;
  store::CatalogLoadOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  options.mode = model::LoadMode::kView;
  options.stats = &stats;
  for (auto _ : state) {
    stats = store::CatalogLoadStats{};  // counters are per-open
    auto catalog = store::Catalog::LoadFromBytes(bytes, options);
    MEETXML_CHECK_OK(catalog.status());
    benchmark::DoNotOptimize(catalog);
  }
  uint64_t copied = 0;
  uint64_t viewed = 0;
  for (const auto& doc_stats : stats.documents) {
    copied += doc_stats.bytes_copied;
    viewed += doc_stats.bytes_viewed;
  }
  state.counters["docs"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["copied_MB"] = static_cast<double>(copied) / 1e6;
  state.counters["viewed_MB"] = static_cast<double>(viewed) / 1e6;
}
BENCHMARK(BM_CatalogOpenView)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

// The serial row-oriented reference: what an 8-document store paid
// before this PR series (legacy payload, one decode thread).
void BM_CatalogOpenDoc0Serial(benchmark::State& state) {
  const std::string& bytes = CatalogImage(
      static_cast<int>(state.range(0)),
      model::DocumentPayloadFormat::kRowOriented);
  store::CatalogLoadOptions options;
  options.threads = 1;
  for (auto _ : state) {
    auto catalog = store::Catalog::LoadFromBytes(bytes, options);
    MEETXML_CHECK_OK(catalog.status());
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["docs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CatalogOpenDoc0Serial)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
