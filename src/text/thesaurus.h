// Thesaurus-based query expansion.
//
// Paper §4: "thesauri are a promising tool to help a user find
// interesting results, especially to broaden a search that returned too
// few answers." This module implements that extension: a synonym-ring
// thesaurus expands a search term into its synonym set, the expanded
// matches are merged (and still attributed to the one original term,
// so the meet semantics are unchanged), and expansion can be gated on
// the unexpanded search having returned too few answers.

#ifndef MEETXML_TEXT_THESAURUS_H_
#define MEETXML_TEXT_THESAURUS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/search.h"
#include "util/result.h"

namespace meetxml {
namespace text {

/// \brief A synonym-ring thesaurus: terms in one ring are mutually
/// substitutable. Lookups are case-folded.
class Thesaurus {
 public:
  /// \brief Adds a ring of synonyms; every member expands to all
  /// members. Terms may appear in several rings (the union expands).
  void AddRing(const std::vector<std::string>& terms);

  /// \brief Loads rings from text: one ring per line, terms separated
  /// by commas; '#' starts a comment line.
  static util::Result<Thesaurus> FromText(std::string_view text);

  /// \brief The expansion of `term`: the term itself first, then its
  /// synonyms (deduplicated, stable order).
  std::vector<std::string> Expand(std::string_view term) const;

  /// \brief Number of distinct terms known to the thesaurus.
  size_t term_count() const { return rings_.size(); }

 private:
  // term (folded) -> synonym list (folded, insertion order).
  std::unordered_map<std::string, std::vector<std::string>> rings_;
};

/// \brief Knobs for expanded search.
struct ExpandedSearchOptions {
  MatchMode mode = MatchMode::kContainsIgnoreCase;
  /// Expand only when the unexpanded term matched fewer associations
  /// than this ("broaden a search that returned too few answers");
  /// 0 = always expand.
  size_t expand_below = 0;
};

/// \brief Searches `term`, expanding it through the thesaurus. All
/// synonym matches are merged into one TermMatches attributed to the
/// original term, so feeding the result into the meet treats a synonym
/// hit exactly like a direct hit.
util::Result<TermMatches> SearchExpanded(
    const FullTextSearch& search, const Thesaurus& thesaurus,
    std::string_view term, const ExpandedSearchOptions& options = {});

}  // namespace text
}  // namespace meetxml

#endif  // MEETXML_TEXT_THESAURUS_H_
