// AB7 — ablation: query-language overhead.
//
// The paper argues the meet "can be easily extended to" query languages
// (§7). This harness quantifies what the declarative surface costs on
// top of the direct API: parse + plan + bind vs. calling full-text
// search and MeetGeneral directly. Expected shape: the language layer
// adds microseconds — negligible against search + meet.

#include <benchmark/benchmark.h>

#include "core/meet_general.h"
#include "core/restrictions.h"
#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "query/executor.h"
#include "query/parser.h"
#include "text/search.h"

using namespace meetxml;

namespace {

struct Fixture {
  model::StoredDocument doc;
  std::unique_ptr<query::Executor> executor;
  std::unique_ptr<text::FullTextSearch> search;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto f = new Fixture();
    data::DblpOptions options;
    options.icde_papers_per_year = 30;
    options.other_papers_per_year = 90;
    options.journal_articles_per_year = 30;
    auto generated = data::GenerateDblp(options);
    MEETXML_CHECK_OK(generated.status());
    auto doc = model::Shred(*generated);
    MEETXML_CHECK_OK(doc.status());
    f->doc = std::move(*doc);
    auto executor = query::Executor::Build(f->doc);
    MEETXML_CHECK_OK(executor.status());
    f->executor =
        std::make_unique<query::Executor>(std::move(*executor));
    auto search = text::FullTextSearch::Build(f->doc);
    MEETXML_CHECK_OK(search.status());
    f->search =
        std::make_unique<text::FullTextSearch>(std::move(*search));
    return f;
  }();
  return *fixture;
}

constexpr const char* kQuery =
    "select meet(a, b) from dblp//cdata a, dblp//cdata b "
    "where a contains 'ICDE' and b contains '1993' exclude dblp";

void BM_ParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto query = query::ParseQuery(kQuery);
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_ParseOnly);

void BM_FullQuery(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    auto result = fixture.executor->ExecuteText(kQuery);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullQuery)->Unit(benchmark::kMicrosecond);

void BM_DirectApi(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    auto matches = fixture.search->SearchAll({"ICDE", "1993"},
                                             text::MatchMode::kContains);
    MEETXML_CHECK_OK(matches.status());
    auto meets = core::MeetGeneral(
        fixture.doc, text::FullTextSearch::ToMeetInput(*matches),
        core::ExcludeRootOptions(fixture.doc));
    benchmark::DoNotOptimize(meets);
  }
}
BENCHMARK(BM_DirectApi)->Unit(benchmark::kMicrosecond);

void BM_ExplainOnly(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    auto plan = fixture.executor->ExplainText(kQuery);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ExplainOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
