// AB15 — ablation: streaming top-k vs. the materialized merge.
//
// The paper's §4 ranked retrieval asks for the k nearest concepts; the
// legacy MultiExecutor merge materialized every document's full answer,
// sorted the union, and threw away all but k rows. The streaming path
// (store/multi_executor.h) keeps a size-k heap per document, merges
// through one global k-bounded heap, and shares the current k-th-best
// distance as an early-termination ceiling across the fan-out.
//
// Part 1 sweeps k (1/10/100/1000) over the 8-document catalog on a
// selective ranked query, streaming vs. materialized (the bench is the
// only caller of ExecuteOptions::materialized_merge). Expected shape:
// the streaming curve is flat in k while the materialized one pays the
// full enumeration regardless of k — the acceptance gate is >= 3x at
// k=10.
//
// Part 2 sweeps document count at k=10. Expected shape: both paths
// scale in documents, but streaming's slope is the per-document *found*
// work minus everything the ceiling prunes, so the gap widens with the
// collection.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "data/dblp_gen.h"
#include "model/shredder.h"
#include "store/catalog.h"
#include "store/multi_executor.h"
#include "xml/serializer.h"

using namespace meetxml;

namespace {

constexpr int kMaxDocs = 8;

// The ab10 corpus shape: one bibliography per source, distinct year
// ranges, same size — so fan-out work is comparable per document.
const std::vector<std::string>& SourceXmls() {
  static std::vector<std::string>* xmls = [] {
    auto* out = new std::vector<std::string>;
    for (int i = 0; i < kMaxDocs; ++i) {
      data::DblpOptions options;
      options.start_year = 1980 + 3 * i;
      options.end_year = options.start_year + 2;
      options.icde_papers_per_year = 20;
      options.other_papers_per_year = 40;
      options.journal_articles_per_year = 20;
      auto generated = data::GenerateDblp(options);
      MEETXML_CHECK_OK(generated.status());
      xml::SerializeOptions serialize_options;
      serialize_options.indent = 1;
      out->push_back(xml::Serialize(*generated, serialize_options));
    }
    return out;
  }();
  return *xmls;
}

store::Catalog* SharedCatalog(int docs) {
  static store::Catalog* catalogs[kMaxDocs + 1] = {};
  if (catalogs[docs] == nullptr) {
    auto* catalog = new store::Catalog;
    for (int i = 0; i < docs; ++i) {
      auto doc = model::ShredXmlText(SourceXmls()[i]);
      MEETXML_CHECK_OK(doc.status());
      MEETXML_CHECK_OK(
          catalog->Add("dblp_" + std::to_string(i), std::move(*doc))
              .status());
    }
    catalogs[docs] = catalog;
  }
  return catalogs[docs];
}

// Top-k-selective ranked query: a structural cdata self-join makes
// every text node a distance-0 meet, so the answer is collection-sized
// and the LIMIT keeps k of it — the k << found shape early termination
// exists for. Structural bindings keep the shared (unprunable) work
// small, so the bench isolates the merge strategies it compares.
std::string TopKQuery(int k) {
  return "SELECT MEET(a, b) FROM dblp//cdata a, dblp//cdata b "
         "EXCLUDE dblp LIMIT " +
         std::to_string(k);
}

void RunTopK(benchmark::State& state, int docs, int k,
             bool materialized) {
  store::Catalog* catalog = SharedCatalog(docs);
  store::MultiExecutor multi(catalog);
  query::ExecuteOptions options;
  options.materialized_merge = materialized;
  const std::string query = TopKQuery(k);

  // Warm the lazy text indexes so the loop measures the merge, not
  // first-touch index builds.
  auto warm = multi.ExecuteText("*", query, options);
  MEETXML_CHECK_OK(warm.status());

  uint64_t rows = 0;
  uint64_t found = 0;
  uint64_t examined = 0;
  for (auto _ : state) {
    auto result = multi.ExecuteText("*", query, options);
    MEETXML_CHECK_OK(result.status());
    rows = result->rows.size();
    found = result->rows_found;
    examined = result->rows_examined;
    benchmark::DoNotOptimize(result);
  }
  state.counters["docs"] = docs;
  state.counters["k"] = k;
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["rows_found"] = static_cast<double>(found);
  state.counters["rows_examined"] = static_cast<double>(examined);
}

// ---- Part 1: latency vs. k over the full catalog ------------------------

void BM_TopKStreaming(benchmark::State& state) {
  RunTopK(state, kMaxDocs, static_cast<int>(state.range(0)), false);
}
BENCHMARK(BM_TopKStreaming)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_TopKMaterialized(benchmark::State& state) {
  RunTopK(state, kMaxDocs, static_cast<int>(state.range(0)), true);
}
BENCHMARK(BM_TopKMaterialized)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// ---- Part 2: latency vs. document count at k=10 -------------------------

void BM_TopKStreamingDocs(benchmark::State& state) {
  RunTopK(state, static_cast<int>(state.range(0)), 10, false);
}
BENCHMARK(BM_TopKStreamingDocs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TopKMaterializedDocs(benchmark::State& state) {
  RunTopK(state, static_cast<int>(state.range(0)), 10, true);
}
BENCHMARK(BM_TopKMaterializedDocs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
