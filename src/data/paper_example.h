// The paper's running example: the bibliography document of Figure 1.

#ifndef MEETXML_DATA_PAPER_EXAMPLE_H_
#define MEETXML_DATA_PAPER_EXAMPLE_H_

#include <string>

namespace meetxml {
namespace data {

/// \brief XML text of the paper's Figure 1 document: a bibliography with
/// an institute holding two articles — Ben Bit's "How to Hack" (key
/// BB99, structured author name) and Bob Byte's "Hacking & RSI" (key
/// BK99, flat author name), both from 1999. All worked examples of
/// paper §3.1 run against this document.
std::string PaperExampleXml();

}  // namespace data
}  // namespace meetxml

#endif  // MEETXML_DATA_PAPER_EXAMPLE_H_
